(** The 18 workload kernels: one per row of the paper's Table 2
    (11 SPEC 2006 benchmarks + 7 real applications).

    Each kernel reproduces the FlexVec-relevant shape of the hot loop
    the paper vectorized in that benchmark: the dependence pattern
    (which determines the instruction mix column of Table 2), the
    average trip count, the guard selectivity and dependency-fire rate
    (which determine effective vector length), indirection and compute
    intensity (which §5 identifies as the speedup drivers). Where the
    paper's trip count is too large to simulate in full (gcc 31K,
    milc 160K, SSCA2 58K), we scale it down and record the substitution
    in EXPERIMENTS.md; trip counts below 10K are used as-is. *)

open Fv_isa
module B = Fv_ir.Builder
module Memory = Fv_mem.Memory

type built = {
  mem : Memory.t;
  env : (string * Value.t) list;
  loop : Fv_ir.Ast.loop;
}

let f v = Value.Float v
let i v = Value.Int v

(* ------------------------------------------------------------------ *)
(* Shared loop shapes                                                  *)
(* ------------------------------------------------------------------ *)

(** Conditional-update minimum search with speculative indirect loads —
    the h264ref shape (Fig. 6): guard and update both read the running
    minimum; the inner loads execute under a stale-guard mask and need
    VMOVFF / VPGATHERFF. *)
let min_search_speculative ~name ~trip ~sad ~spiral ~mv ~init_min () =
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "sad" sad);
  ignore (Memory.alloc_ints mem "spiral" spiral);
  ignore (Memory.alloc_ints mem "mv" mv);
  let loop =
    B.(
      loop ~name ~index:"pos" ~hi:(int trip)
        ~live_out:[ "min_mcost"; "best_pos" ]
        [
          if_
            (load "sad" (var "pos") < var "min_mcost")
            [
              assign "mcost" (load "sad" (var "pos"));
              assign "cand" (load "spiral" (var "pos"));
              assign "mcost" (var "mcost" + load "mv" (var "cand"));
              if_
                (var "mcost" < var "min_mcost")
                [
                  assign "min_mcost" (var "mcost");
                  assign "best_pos" (var "pos");
                ];
            ];
        ])
  in
  { mem; env = [ ("min_mcost", i init_min); ("best_pos", i (-1)) ]; loop }

(** Conditional scalar update with a pure chain (no guarded loads): the
    gcc/gobmk/sjeng shape — mix is KFTM + VPSLCTLAST only. Includes a
    side reduction for compute intensity. *)
let max_track ~name ~trip ~weights ~extra_compute () =
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "w" weights);
  let body =
    B.(
      [
        assign "t" (load "w" (var "i"));
        if_
          (var "t" > var "best")
          [ assign "best" (var "t"); assign "barg" (var "i") ];
      ]
      @
      if extra_compute then
        [
          assign "acc"
            (var "acc" + ((var "t" * int 3) + (var "t" % int 7) + int 1));
        ]
      else [ assign "acc" (var "acc" + var "t") ])
  in
  let loop =
    B.(loop ~name ~index:"i" ~hi:(int trip) ~live_out:[ "best"; "barg"; "acc" ])
      body
  in
  { mem; env = [ ("best", i (min_int / 2)); ("barg", i (-1)); ("acc", i 0) ]; loop }

(** Runtime memory dependency through an indirectly indexed array — the
    astar shape (Fig. 2): mix is KFTM + VPCONFLICTM. *)
let coord_update ~name ~trip ~qa ~sa ~d () =
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "qa" qa);
  ignore (Memory.alloc_ints mem "sa" sa);
  ignore (Memory.alloc_ints mem "d" d);
  let loop =
    B.(
      loop ~name ~index:"i" ~hi:(int trip)
        [
          assign "q" (load "qa" (var "i"));
          assign "s" (load "sa" (var "i"));
          assign "coord" (var "q" - var "s");
          if_
            (var "s" >= load "d" (var "coord"))
            [ store "d" (var "coord") (var "s") ];
        ])
  in
  { mem; env = []; loop }

(** Floating-point scatter-accumulate — the milc/gromacs/calculix shape:
    [d[idx[i]] += f(src[i])], an unconditional RAW through [d]. *)
let scatter_add ~name ~trip ~idx ~src ~buckets ~compute () =
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "idx" idx);
  ignore (Memory.alloc_floats mem "src" src);
  ignore (Memory.alloc_floats mem "d" (Array.make buckets 0.0));
  let contribution =
    (* real lattice-QCD / MD inner loops perform dozens of flops per
       stored element (e.g. an su3 matrix-vector product); the polynomial
       below models that arithmetic density *)
    B.(
      match compute with
      | `Light ->
          let x = load "src" (var "i") in
          (x * x * flt 0.25) + (x * flt 1.5) + flt 0.125
      | `Heavy ->
          let x = load "src" (var "i") in
          let x2 = x * x in
          (x2 * x2 * flt 0.0625)
          + (x2 * x * flt 0.25)
          + (x2 * flt 0.5)
          + (x * flt 1.5)
          + flt 0.75)
  in
  let loop =
    B.(
      loop ~name ~index:"i" ~hi:(int trip)
        [
          assign "j" (load "idx" (var "i"));
          assign "t" (load "d" (var "j") + contribution);
          store "d" (var "j") (var "t");
        ])
  in
  { mem; env = []; loop }

(** Early loop termination with speculative loads — the gzip/zlib shape
    (Fig. 5): search for a key through one level of indirection, break
    on hit, accumulate otherwise. *)
let search_break ~name ~trip ~data ~tab ~key () =
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "data" data);
  ignore (Memory.alloc_ints mem "tab" tab);
  let loop =
    B.(
      loop ~name ~index:"i" ~hi:(int trip) ~live_out:[ "hit"; "run" ]
        [
          assign "v" (load "data" (var "i"));
          assign "t" (load "tab" (var "v"));
          if_ (var "t" = var "key") [ assign "hit" (var "i"); break_ ];
          assign "run" (var "run" + int 1);
        ])
  in
  { mem; env = [ ("key", i key); ("hit", i (-1)); ("run", i 0) ]; loop }

(* ------------------------------------------------------------------ *)
(* SPEC 2006 kernels                                                   *)
(* ------------------------------------------------------------------ *)

(** 401.bzip2 — sorting cost scan: conditional update with speculative
    gathers (Table 2 mix: KFTM, VPSLCTLAST, VPGATHERFF, VMOVFF). *)
let bzip2 seed =
  let st = Data.rng seed in
  let trip = 4235 in
  let m = 256 in
  let sad =
    Data.descending_staircase st trip ~hi:9000 ~lo:1000 ~update_rate:0.012 ~near_rate:0.25 ()
  in
  (* indices valid where the guard can be true; poison elsewhere keeps
     the first-faulting machinery honest *)
  let spiral =
    Array.mapi
      (fun k _ ->
        if k mod 37 = 5 then 5_000_000 else Random.State.int st m)
      sad
  in
  let mv = Data.uniform_ints st m 64 in
  (* poisoned slots must not be reachable: force their guard false *)
  Array.iteri (fun k v -> if v >= 5_000_000 then sad.(k) <- 1_000_000) spiral;
  min_search_speculative ~name:"bzip2" ~trip ~sad ~spiral ~mv ~init_min:8000 ()

(** 403.gcc — register-allocation cost maximum: pure conditional update
    (KFTM, VPSLCTLAST), compute-rich, very high trip count (31K in the
    paper; scaled to 8000). *)
let gcc seed =
  let st = Data.rng seed in
  let trip = 8000 in
  let weights =
    Data.ascending_staircase st trip ~lo:0 ~hi:6000 ~update_rate:0.01 ()
  in
  max_track ~name:"gcc" ~trip ~weights ~extra_compute:true ()

(** 445.gobmk — pattern-value maximum: same shape, low trip count (67). *)
let gobmk seed =
  let st = Data.rng seed in
  let trip = 67 in
  let weights =
    Data.ascending_staircase st trip ~lo:0 ~hi:500 ~update_rate:0.05 ()
  in
  max_track ~name:"gobmk" ~trip ~weights ~extra_compute:false ()

(** 458.sjeng — move-ordering maximum: very low trip count (22). *)
let sjeng seed =
  let st = Data.rng seed in
  let trip = 22 in
  let weights =
    Data.ascending_staircase st trip ~lo:0 ~hi:300 ~update_rate:0.04 ()
  in
  max_track ~name:"sjeng" ~trip ~weights ~extra_compute:false ()

(** 464.h264ref — the paper's running example (§1.1, Fig. 6). *)
let h264ref seed =
  let st = Data.rng seed in
  let trip = 1089 in
  let m = 128 in
  let sad =
    Data.descending_staircase st trip ~hi:4000 ~lo:500 ~update_rate:0.02 ~near_rate:0.3 ()
  in
  let spiral = Data.uniform_ints st trip m in
  let mv = Data.uniform_ints st m 48 in
  min_search_speculative ~name:"h264ref" ~trip ~sad ~spiral ~mv ~init_min:3500 ()

(** 473.astar — the paper's Fig. 2 loop: runtime memory dependency. *)
let astar seed =
  let st = Data.rng seed in
  let trip = 961 in
  let buckets = 512 in
  let coord = Data.conflicting_indices st trip ~buckets ~repeat_rate:0.03 in
  let sa = Data.uniform_ints st trip 100 in
  let qa = Array.init trip (fun k -> coord.(k) + sa.(k)) in
  let d = Data.uniform_ints st buckets 50 in
  coord_update ~name:"astar" ~trip ~qa ~sa ~d ()

(** 433.milc — lattice-site scatter accumulation (fp), trip 160K scaled
    to 8000. *)
let milc seed =
  let st = Data.rng seed in
  let trip = 8000 in
  let buckets = 1024 in
  let idx = Data.conflicting_indices st trip ~buckets ~repeat_rate:0.015 in
  let src = Data.uniform_floats st trip 2.0 in
  scatter_add ~name:"milc" ~trip ~idx ~src ~buckets ~compute:`Heavy ()

(** 435.gromacs — force accumulation (fp), short inner loops (83). *)
let gromacs435 seed =
  let st = Data.rng seed in
  let trip = 83 in
  let buckets = 256 in
  let idx = Data.conflicting_indices st trip ~buckets ~repeat_rate:0.04 in
  let src = Data.uniform_floats st trip 3.0 in
  scatter_add ~name:"gromacs" ~trip ~idx ~src ~buckets ~compute:`Heavy ()

(** 444.namd — cutoff distance minimum (fp): conditional update with a
    compute-heavy pure chain (KFTM, VPSLCTLAST). *)
let namd seed =
  let st = Data.rng seed in
  let trip = 157 in
  let mem = Memory.create () in
  ignore (Memory.alloc_floats mem "rx" (Data.uniform_floats st trip 10.0));
  ignore (Memory.alloc_floats mem "ry" (Data.uniform_floats st trip 10.0));
  ignore (Memory.alloc_floats mem "rz" (Data.uniform_floats st trip 10.0));
  let loop =
    B.(
      loop ~name:"namd" ~index:"i" ~hi:(int trip) ~live_out:[ "rmin"; "jmin" ]
        [
          assign "r"
            ((load "rx" (var "i") * load "rx" (var "i"))
            + (load "ry" (var "i") * load "ry" (var "i"))
            + (load "rz" (var "i") * load "rz" (var "i")));
          if_
            (var "r" < var "rmin")
            [ assign "rmin" (var "r"); assign "jmin" (var "i") ];
        ])
  in
  { mem; env = [ ("rmin", f 250.0); ("jmin", i (-1)) ]; loop }

(** 450.soplex — pricing minimum with branchy surrounding code: the
    extra data-dependent if/else halves effective SIMD utilisation
    (§5: "branchy code reduces the effective vector length"). *)
let soplex seed =
  let st = Data.rng seed in
  let trip = 1422 in
  let mem = Memory.create () in
  let vals =
    Data.descending_staircase st trip ~hi:100000 ~lo:1000 ~update_rate:0.01 ()
  in
  ignore (Memory.alloc_ints mem "val" vals);
  (* pricing phases come in runs: the flag flips rarely, so the scalar
     baseline's branch predictor does reasonably well, as on the real
     workload *)
  let flag = Array.make trip 0 in
  let cur = ref 0 in
  for k = 0 to trip - 1 do
    if Random.State.float st 1.0 < 0.08 then cur := 1 - !cur;
    flag.(k) <- !cur
  done;
  ignore (Memory.alloc_ints mem "flag" flag);
  let loop =
    B.(
      loop ~name:"soplex" ~index:"i" ~hi:(int trip)
        ~live_out:[ "minv"; "mini"; "acc"; "acc2" ]
        [
          assign "t" (load "val" (var "i"));
          if_
            (var "t" < var "minv")
            [ assign "minv" (var "t"); assign "mini" (var "i") ];
          if_else
            (load "flag" (var "i") > int 0)
            [ assign "acc" (var "acc" + ((var "t" * int 3) % int 1001)) ]
            [ assign "acc2" (var "acc2" + (var "t" % int 257)) ];
        ])
  in
  {
    mem;
    env = [ ("minv", i 200000); ("mini", i (-1)); ("acc", i 0); ("acc2", i 0) ];
    loop;
  }

(** 454.calculix — element assembly scatter-add (fp), trip 4298. *)
let calculix seed =
  let st = Data.rng seed in
  let trip = 4298 in
  let buckets = 2048 in
  let idx = Data.conflicting_indices st trip ~buckets ~repeat_rate:0.01 in
  let src = Data.uniform_floats st trip 1.0 in
  scatter_add ~name:"calculix" ~trip ~idx ~src ~buckets ~compute:`Heavy ()

(* ------------------------------------------------------------------ *)
(* Real applications                                                   *)
(* ------------------------------------------------------------------ *)

(** A combined shape used by LAMMPS/GROMACS/BLAST rows: a conditional
    scalar update and an independent runtime memory dependency in the
    same loop body — two disjoint relaxed SCCs, so the generated code
    contains both a KFTM.INC VPL (with VPSLCTLAST) and a VPCONFLICTM
    VPL. *)
let update_plus_scatter ~name ~trip ~vals ~idx ~buckets ~float_data ~init_best
    () =
  let mem = Memory.create () in
  (if float_data then
     ignore (Memory.alloc_floats mem "v" (Array.map float_of_int vals))
   else ignore (Memory.alloc_ints mem "v" vals));
  ignore (Memory.alloc_ints mem "nbr" idx);
  (if float_data then ignore (Memory.alloc_floats mem "acc" (Array.make buckets 0.0))
   else ignore (Memory.alloc_ints mem "acc" (Array.make buckets 0)));
  (let st2 = Data.rng (Array.length vals) in
   if float_data then
     ignore (Memory.alloc_floats mem "w2" (Data.uniform_floats st2 (Array.length vals) 2.0))
   else ignore (Memory.alloc_ints mem "w2" (Data.uniform_ints st2 (Array.length vals) 64)));
  let loop =
    (* the arithmetic mirrors an MD pair interaction: squared distance,
       two polynomial terms and a mixing weight per neighbour *)
    B.(
      loop ~name ~index:"i" ~hi:(int trip) ~live_out:[ "best"; "bi" ]
        [
          assign "t" (load "v" (var "i"));
          if_
            (var "t" < var "best")
            [ assign "best" (var "t"); assign "bi" (var "i") ];
          assign "j" (load "nbr" (var "i"));
          assign "t2" (var "t" * var "t");
          assign "u"
            ((var "t2" * var "t2" * (if float_data then flt 0.000001 else int 3))
            + (var "t2" * (if float_data then flt 0.001 else int 7))
            + (var "t" * (if float_data then flt 0.125 else int 5))
            + (load "w2" (var "i") * (if float_data then flt 0.5 else int 2)));
          assign "s" (load "acc" (var "j") + var "u");
          store "acc" (var "j") (var "s");
        ])
  in
  { mem; env = [ ("best", init_best); ("bi", i (-1)) ]; loop }

(** LAMMPS — neighbour-list force loop: cutoff minimum + scatter-add. *)
let lammps seed =
  let st = Data.rng seed in
  let trip = 683 in
  let buckets = 512 in
  let vals =
    Data.descending_staircase st trip ~hi:8000 ~lo:500 ~update_rate:0.015 ()
  in
  let idx = Data.conflicting_indices st trip ~buckets ~repeat_rate:0.02 in
  update_plus_scatter ~name:"LAMMPS" ~trip ~vals ~idx ~buckets ~float_data:true
    ~init_best:(f 7000.0) ()

(** GROMACS (application) — same combined shape, shorter lists. *)
let gromacs_app seed =
  let st = Data.rng seed in
  let trip = 512 in
  let buckets = 384 in
  let vals =
    Data.descending_staircase st trip ~hi:6000 ~lo:400 ~update_rate:0.02 ()
  in
  let idx = Data.conflicting_indices st trip ~buckets ~repeat_rate:0.025 in
  update_plus_scatter ~name:"GROMACS" ~trip ~vals ~idx ~buckets
    ~float_data:true ~init_best:(f 5500.0) ()

(** SSCA2 — graph kernel: relaxation-style conditional store through an
    indirect index plus a best-weight tracker (trip 58K scaled to 8000). *)
let ssca2 seed =
  let st = Data.rng seed in
  let trip = 8000 in
  let buckets = 4096 in
  let mem = Memory.create () in
  let eu = Data.conflicting_indices st trip ~buckets ~repeat_rate:0.01 in
  (* edge weights settle toward a floor: relaxations (and thus both the
     conditional stores and the best-tracker updates) become rare and the
     scalar baseline's branches predictable, as on a real SSSP sweep *)
  let wt =
    Array.init trip (fun k ->
        let floor_now = 400 + (600 * k / trip) in
        floor_now + Random.State.int st 600)
  in
  ignore (Memory.alloc_ints mem "eu" eu);
  ignore (Memory.alloc_ints mem "wt" wt);
  ignore (Memory.alloc_ints mem "dist" (Array.make buckets 700));
  let loop =
    B.(
      loop ~name:"SSCA2" ~index:"i" ~hi:(int trip) ~live_out:[ "best"; "bi" ]
        [
          assign "u" (load "eu" (var "i"));
          assign "w" (load "wt" (var "i"));
          if_
            (var "w" < load "dist" (var "u"))
            [ store "dist" (var "u") (var "w") ];
          if_
            (var "w" > var "best")
            [ assign "best" (var "w"); assign "bi" (var "i") ];
        ])
  in
  { mem; env = [ ("best", i (-1)); ("bi", i (-1)) ]; loop }

(** MILC (application) — staple accumulation (fp), trip 16K scaled to
    8000. *)
let milc_app seed =
  let st = Data.rng seed in
  let trip = 8000 in
  let buckets = 768 in
  let idx = Data.conflicting_indices st trip ~buckets ~repeat_rate:0.02 in
  let src = Data.uniform_floats st trip 1.5 in
  scatter_add ~name:"MILC" ~trip ~idx ~src ~buckets ~compute:`Heavy ()

(** BLAST — hit-score maximum plus diagonal histogram. *)
let blast seed =
  let st = Data.rng seed in
  let trip = 600 in
  let buckets = 256 in
  let vals =
    Data.ascending_staircase st trip ~lo:0 ~hi:2000 ~update_rate:0.02 ()
  in
  let idx = Data.conflicting_indices st trip ~buckets ~repeat_rate:0.03 in
  update_plus_scatter ~name:"BLAST" ~trip ~vals ~idx ~buckets ~float_data:false
    ~init_best:(i (max_int / 2)) ()

(** GZIP — longest-match search with early termination (trip 33). *)
let gzip seed =
  let st = Data.rng seed in
  let trip = 33 in
  let m = 128 in
  let tab = Array.init m (fun k -> 1 + ((k * 131) mod 1000)) in
  let key = 424242 in
  let data = Data.uniform_ints st trip m in
  (* a hit near the end in roughly a third of invocations *)
  if Random.State.int st 3 = 0 then begin
    let pos = trip - 1 - Random.State.int st (trip / 2) in
    tab.(data.(pos)) <- key;
    for k = 0 to pos - 1 do
      if tab.(data.(k)) = key then data.(k) <- (data.(k) + 1) mod m
    done
  end;
  search_break ~name:"GZIP" ~trip ~data ~tab ~key ()

(** ZLIB — hash-chain match search with early termination (trip 54). *)
let zlib seed =
  let st = Data.rng seed in
  let trip = 54 in
  let m = 256 in
  let tab = Array.init m (fun k -> 1 + ((k * 37) mod 4000)) in
  let key = 777777 in
  let data = Data.uniform_ints st trip m in
  if Random.State.int st 2 = 0 then begin
    let pos = trip - 1 - Random.State.int st (trip / 3) in
    tab.(data.(pos)) <- key;
    for k = 0 to pos - 1 do
      if tab.(data.(k)) = key then data.(k) <- (data.(k) + 1) mod m
    done
  end;
  search_break ~name:"ZLIB" ~trip ~data ~tab ~key ()

(** Deterministic data generators for the workload kernels.

    The paper evaluates on SPEC ref inputs and real applications; we
    cannot ship those, so each kernel gets a synthetic generator that
    reproduces the {e performance-relevant} properties §5 identifies:
    trip count, dependency-fire frequency (how often the relaxed edge
    actually fires), guard selectivity (branchiness / effective SIMD
    utilisation), indirection (gathers), and compute intensity. All
    generators are seeded and pure. *)

let rng seed = Random.State.make [| 0x5eed; seed |]

let ints st n f = Array.init n (fun i -> f st i)
let floats st n f = Array.init n (fun i -> f st i)

(** A noisy descending staircase: starts near [hi] and drifts toward
    [lo], so a running-minimum guard stays plausibly active for the
    whole loop and updates fire throughout (roughly every
    [1/update_rate] iterations) instead of collapsing after a warm-up. *)
let descending_staircase st n ~hi ~lo ~update_rate ?(near_rate = 0.0) () =
  let level = ref hi in
  Array.init n (fun i ->
      let progress = float_of_int i /. float_of_int (max 1 n) in
      let floor_now = hi - int_of_float (progress *. float_of_int (hi - lo)) in
      let r = Random.State.float st 1.0 in
      if r < update_rate then begin
        (* a deep dip: definitely a new minimum *)
        level := max lo (min !level floor_now - 20 - Random.State.int st 20);
        !level
      end
      else if r < update_rate +. near_rate then
        (* a shallow dip: passes a [v < min] guard but usually fails the
           inner update condition once per-element costs are added *)
        max lo (!level - 1 - Random.State.int st 10)
      else !level + 1 + Random.State.int st (max 2 ((hi - lo) / 4)))

(** An ascending variant for running-maximum kernels. *)
let ascending_staircase st n ~lo ~hi ~update_rate ?(near_rate = 0.0) () =
  descending_staircase st n ~hi:(-lo) ~lo:(-hi) ~update_rate ~near_rate ()
  |> Array.map (fun v -> -v)

(** Indices into [0, buckets): mostly fresh draws; with probability
    [repeat_rate] the previous index repeats, creating a short-distance
    cross-iteration memory dependency. *)
let conflicting_indices st n ~buckets ~repeat_rate =
  let prev = ref 0 in
  Array.init n (fun _ ->
      let j =
        if Random.State.float st 1.0 < repeat_rate then !prev
        else Random.State.int st buckets
      in
      prev := j;
      j)

let uniform_ints st n bound = ints st n (fun st _ -> Random.State.int st bound)

let uniform_floats st n scale =
  floats st n (fun st _ -> Random.State.float st scale)

lib/workloads/data.pp.ml: Array Random

lib/workloads/kernels.pp.ml: Array Data Fv_ir Fv_isa Fv_mem Random Value

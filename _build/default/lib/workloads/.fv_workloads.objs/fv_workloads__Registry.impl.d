lib/workloads/registry.pp.ml: Kernels List Ppx_deriving_runtime Printf String

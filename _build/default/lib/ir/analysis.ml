(** Def/use analysis over the scalar IR — the raw material for the PDG's
    data-dependence edges. *)

open Ast
module SS = Set.Make (String)

module StringSet = SS

(** Scalar variables read by an expression. *)
let rec expr_uses : expr -> SS.t = function
  | Const _ -> SS.empty
  | Var v -> SS.singleton v
  | Load (_, idx) -> expr_uses idx
  | Binop (_, a, b) | Cmp (_, a, b) -> SS.union (expr_uses a) (expr_uses b)
  | Unop (_, e) -> expr_uses e

(** Array reads performed by an expression: [(array, index expr)]. *)
let rec expr_loads : expr -> (string * expr) list = function
  | Const _ | Var _ -> []
  | Load (arr, idx) -> (arr, idx) :: expr_loads idx
  | Binop (_, a, b) | Cmp (_, a, b) -> expr_loads a @ expr_loads b
  | Unop (_, e) -> expr_loads e

(** Scalars defined directly by a statement (not including nested
    statements of an [If]). *)
let node_defs : node -> SS.t = function
  | Assign (v, _) -> SS.singleton v
  | Store _ | Break -> SS.empty
  | If _ -> SS.empty

(** Scalars read directly by a statement ([If] reads only its
    condition). *)
let node_uses : node -> SS.t = function
  | Assign (_, e) -> expr_uses e
  | Store (_, idx, e) -> SS.union (expr_uses idx) (expr_uses e)
  | If (c, _, _) -> expr_uses c
  | Break -> SS.empty

(** Array reads performed directly by a statement. *)
let node_loads : node -> (string * expr) list = function
  | Assign (_, e) -> expr_loads e
  | Store (_, idx, e) -> expr_loads idx @ expr_loads e
  | If (c, _, _) -> expr_loads c
  | Break -> []

(** Array write performed by a statement, if any: [(array, index expr)]. *)
let node_store : node -> (string * expr) option = function
  | Store (arr, idx, _) -> Some (arr, idx)
  | _ -> None

(** All scalars defined anywhere in the loop body. *)
let loop_defs (l : loop) : SS.t =
  List.fold_left
    (fun acc s -> SS.union acc (node_defs s.node))
    SS.empty (all_stmts l)

(** All scalars read anywhere in the loop body (including the bound). *)
let loop_uses (l : loop) : SS.t =
  List.fold_left
    (fun acc s -> SS.union acc (node_uses s.node))
    (expr_uses l.hi) (all_stmts l)

(** Scalars live into the loop: used in the body (or bound) but defined
    outside, plus anything read before its first definition. We keep the
    conservative approximation [uses ∪ live_out]: the interpreter and the
    vectorized code both need initial values for any variable that might
    be read before being written. *)
let loop_inputs (l : loop) : SS.t =
  SS.remove l.index (SS.union (loop_uses l) (SS.of_list l.live_out))

(** Does the expression mention the induction variable? Such index
    expressions are affine-per-lane and can use unit-stride vector loads;
    others need gathers. *)
let rec mentions_var (v : string) : expr -> bool = function
  | Const _ -> false
  | Var x -> String.equal x v
  | Load (_, idx) -> mentions_var v idx
  | Binop (_, a, b) | Cmp (_, a, b) -> mentions_var v a || mentions_var v b
  | Unop (_, e) -> mentions_var v e

(** [affine_in_index ~index e] returns [Some offset_expr] when [e] is
    exactly [index] or [index + c]/[c + index] with [c] invariant —
    i.e. a unit-stride access pattern. *)
let affine_in_index ~(index : string) (e : expr) : expr option =
  match e with
  | Var v when String.equal v index -> Some (Const (Fv_isa.Value.Int 0))
  | Binop (Fv_isa.Value.Add, Var v, c)
    when String.equal v index && not (mentions_var index c) ->
      Some c
  | Binop (Fv_isa.Value.Add, c, Var v)
    when String.equal v index && not (mentions_var index c) ->
      Some c
  | Binop (Fv_isa.Value.Sub, Var v, c)
    when String.equal v index && not (mentions_var index c) ->
      Some (Unop (Fv_isa.Value.Neg, c))
  | _ -> None

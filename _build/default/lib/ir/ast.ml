(** The scalar loop IR.

    FlexVec's code generation "is implemented as a pass in a high-level,
    AST like IR" (§4); this is our equivalent. A {!loop} is a counted
    [for] loop whose body is a statement tree: assignments to scalars,
    stores to arrays, structured conditionals, and [break]. This is rich
    enough to express all three hard-to-vectorize patterns the paper
    targets — early loop termination (Fig. 5), conditional scalar update
    (Fig. 6), and runtime memory dependencies (Figs. 2 and 7) — as well
    as the surrounding vectorizable code. *)

open Fv_isa

type expr =
  | Const of Value.t
  | Var of string
  | Load of string * expr  (** [Load (arr, idx)] reads [arr.(idx)] *)
  | Binop of Value.binop * expr * expr
  | Cmp of Value.cmpop * expr * expr  (** yields int 0/1 *)
  | Unop of Value.unop * expr
[@@deriving show { with_path = false }, eq]

type stmt = { id : int; node : node } [@@deriving show { with_path = false }, eq]

and node =
  | Assign of string * expr
  | Store of string * expr * expr  (** [Store (arr, idx, e)] writes [arr.(idx) <- e] *)
  | If of expr * stmt list * stmt list
  | Break
[@@deriving show { with_path = false }, eq]

type loop = {
  name : string;
  index : string;  (** induction variable; reads allowed, writes forbidden *)
  lo : expr;  (** inclusive start, evaluated once on entry *)
  hi : expr;  (** exclusive bound, loop-invariant *)
  body : stmt list;
  live_out : string list;  (** scalar variables observed after the loop *)
}
[@@deriving show { with_path = false }]

(** Depth-first program-order listing of all statements (outer before
    nested, then-before-else). *)
let rec stmts_of_body (body : stmt list) : stmt list =
  List.concat_map
    (fun s ->
      match s.node with
      | If (_, t, e) -> (s :: stmts_of_body t) @ stmts_of_body e
      | _ -> [ s ])
    body

let all_stmts (l : loop) : stmt list = stmts_of_body l.body

let find_stmt (l : loop) (id : int) : stmt =
  match List.find_opt (fun s -> s.id = id) (all_stmts l) with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Ast.find_stmt: no statement %d" id)

(** Renumber every statement with fresh consecutive ids in program
    order. Builders create statements with id [-1]; analyses require the
    numbered form. *)
let number (l : loop) : loop =
  let next = ref 0 in
  let rec stmt s =
    let id = !next in
    incr next;
    let node =
      match s.node with
      | If (c, t, e) -> If (c, List.map stmt t, List.map stmt e)
      | n -> n
    in
    { id; node }
  in
  { l with body = List.map stmt l.body }

let is_numbered (l : loop) =
  List.for_all (fun s -> s.id >= 0) (all_stmts l)

(** Number of statements in the loop body (flattened). *)
let size (l : loop) = List.length (all_stmts l)

(** C-like pretty printer for the scalar IR. *)

open Fv_isa
open Ast

let binop_str : Value.binop -> string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Min -> "min"
  | Max -> "max"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let cmpop_str : Value.cmpop -> string = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let rec pp_expr ppf = function
  | Const v -> Value.pp_compact ppf v
  | Var v -> Fmt.string ppf v
  | Load (arr, idx) -> Fmt.pf ppf "%s[%a]" arr pp_expr idx
  | Binop (((Min | Max) as op), a, b) ->
      Fmt.pf ppf "%s(%a, %a)" (binop_str op) pp_expr a pp_expr b
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Cmp (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (cmpop_str op) pp_expr b
  | Unop (Neg, e) -> Fmt.pf ppf "-(%a)" pp_expr e
  | Unop (Not, e) -> Fmt.pf ppf "!(%a)" pp_expr e
  | Unop (Abs, e) -> Fmt.pf ppf "abs(%a)" pp_expr e

let rec pp_stmt ppf (s : stmt) =
  match s.node with
  | Assign (v, e) -> Fmt.pf ppf "@[<h>S%d: %s = %a;@]" s.id v pp_expr e
  | Store (arr, idx, e) ->
      Fmt.pf ppf "@[<h>S%d: %s[%a] = %a;@]" s.id arr pp_expr idx pp_expr e
  | Break -> Fmt.pf ppf "S%d: break;" s.id
  | If (c, t, []) ->
      Fmt.pf ppf "@[<v 2>S%d: if %a {@,%a@]@,}" s.id pp_expr c pp_body t
  | If (c, t, e) ->
      Fmt.pf ppf "@[<v 2>S%d: if %a {@,%a@]@,@[<v 2>} else {@,%a@]@,}" s.id
        pp_expr c pp_body t pp_body e

and pp_body ppf body = Fmt.(list ~sep:cut pp_stmt) ppf body

let pp_loop ppf (l : loop) =
  Fmt.pf ppf "@[<v 2>for (%s = %a; %s < %a; %s++) {@,%a@]@,}" l.index pp_expr
    l.lo l.index pp_expr l.hi l.index pp_body l.body;
  if l.live_out <> [] then
    Fmt.pf ppf "@,// live-out: %a" Fmt.(list ~sep:comma string) l.live_out

let loop_to_string l = Fmt.str "%a" pp_loop l

(** Combinators for writing IR loops concisely.

    The workloads, tests, and examples build their kernels with these.
    Statements are created with id [-1]; {!loop} runs {!Ast.number} so
    the result is always analysable. *)

open Fv_isa
open Ast

let int i = Const (Value.Int i)
let flt f = Const (Value.Float f)
let var v = Var v
let load arr idx = Load (arr, idx)

let ( + ) a b = Binop (Value.Add, a, b)
let ( - ) a b = Binop (Value.Sub, a, b)
let ( * ) a b = Binop (Value.Mul, a, b)
let ( / ) a b = Binop (Value.Div, a, b)
let ( % ) a b = Binop (Value.Rem, a, b)
let ( &&& ) a b = Binop (Value.And, a, b)
let ( ||| ) a b = Binop (Value.Or, a, b)
let min_ a b = Binop (Value.Min, a, b)
let max_ a b = Binop (Value.Max, a, b)
let ( < ) a b = Cmp (Value.Lt, a, b)
let ( <= ) a b = Cmp (Value.Le, a, b)
let ( > ) a b = Cmp (Value.Gt, a, b)
let ( >= ) a b = Cmp (Value.Ge, a, b)
let ( = ) a b = Cmp (Value.Eq, a, b)
let ( <> ) a b = Cmp (Value.Ne, a, b)
let neg e = Unop (Value.Neg, e)
let not_ e = Unop (Value.Not, e)
let abs_ e = Unop (Value.Abs, e)

let mk node = { id = -1; node }
let assign v e = mk (Assign (v, e))
let store arr idx e = mk (Store (arr, idx, e))
let if_ c t = mk (If (c, t, []))
let if_else c t e = mk (If (c, t, e))
let break_ = mk Break

let loop ?(name = "loop") ~index ?(lo = int 0) ~hi ?(live_out = []) body =
  Ast.number { name; index; lo; hi; body; live_out }

lib/ir/analysis.pp.ml: Ast Fv_isa List Set String

lib/ir/pp.pp.ml: Ast Fmt Fv_isa Value

lib/ir/ast.pp.ml: Fv_isa List Ppx_deriving_runtime Printf Value

lib/ir/builder.pp.ml: Ast Fv_isa Value

lib/ir/interp.pp.ml: Ast Fv_isa Fv_mem Fv_trace Hashtbl Latency List Printf Value

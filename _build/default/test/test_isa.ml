(** ISA-level semantics, anchored to the paper's worked examples in
    §3.3.1 (VPGATHERFF), §3.4 (KFTM.EXC/INC), §3.5 (VPSLCTLAST) and
    §3.6 (VPCONFLICTM). *)

open Fv_isa

let mask = Alcotest.testable Mask.pp Mask.equal

let value =
  Alcotest.testable Value.pp Value.equal

let check_mask = Alcotest.check mask
let m = Mask.of_bits

(* ---------------- Mask basics ---------------- *)

let test_of_bits_roundtrip () =
  let s = "0110010011110000" in
  Alcotest.(check string) "roundtrip" s (Mask.to_bits (m s))

let test_bool_ops () =
  check_mask "and" (m "0100") (Mask.kand (m "0110") (m "1100"));
  check_mask "or" (m "1110") (Mask.kor (m "0110") (m "1100"));
  check_mask "xor" (m "1010") (Mask.kxor (m "0110") (m "1100"));
  check_mask "andn" (m "1000") (Mask.kandn (m "0110") (m "1100"));
  check_mask "not" (m "1001") (Mask.knot (m "0110"))

let test_first_last () =
  Alcotest.(check (option int)) "first" (Some 1) (Mask.first_set (m "0110"));
  Alcotest.(check (option int)) "last" (Some 2) (Mask.last_set (m "0110"));
  Alcotest.(check (option int)) "first none" None (Mask.first_set (m "0000"));
  Alcotest.(check int) "popcount" 2 (Mask.popcount (m "0110"))

let test_iota () =
  check_mask "lt" (m "11100000") (Mask.iota_lt 8 3);
  check_mask "lt over" (m "11111111") (Mask.iota_lt 8 99);
  check_mask "ge" (m "00011111") (Mask.iota_ge 8 3)

(* ---------------- KFTM (§3.4) ---------------- *)

(* The paper's KFTM.EXC example:
   k3 = 1 1 0 0 0 1 1 1 0...   k2 = 0 0 0 1 1 1 0...   k1 = 0 0 0 1 1 0... *)
let test_kftm_exc_paper () =
  let k3 = m "1100011100000000" in
  let k2 = m "0001110000000000" in
  check_mask "paper example" (m "0001100000000000")
    (Mask.kftm_exc ~write:k2 k3)

(* The paper's KFTM.INC example: same inputs, lane 5 included. *)
let test_kftm_inc_paper () =
  let k3 = m "1100011100000000" in
  let k2 = m "0001110000000000" in
  check_mask "paper example" (m "0001110000000000")
    (Mask.kftm_inc ~write:k2 k3)

let test_kftm_no_stop () =
  (* no update: all active bits set (paper §3.1) *)
  let w = m "0011110000000000" in
  check_mask "exc all" w (Mask.kftm_exc ~write:w (m "0000000000000000"));
  check_mask "inc all" w (Mask.kftm_inc ~write:w (m "0000000000000000"))

let test_kftm_exc_consumes_leading_stop () =
  (* a stop bit on the first enabled lane is that partition's own
     serialization point: it has been satisfied, so the lane executes.
     Without this the memory-conflict VPL of Fig. 2(b) would livelock. *)
  let w = m "0000001111111111" in
  let stop = m "0000001010000001" in
  check_mask "exc" (m "0000001100000000") (Mask.kftm_exc ~write:w stop)

let test_kftm_inc_stop_at_first () =
  let w = m "0000001111111111" in
  let stop = m "0000001010000001" in
  check_mask "inc" (m "0000001000000000") (Mask.kftm_inc ~write:w stop)

(* Walk the full VPL partition sequence from §3.6's first example:
   conflicts at lanes 6, 8, 15 partition 16 lanes into 0-5 / 6-7 / 8-14 / 15. *)
let test_vpl_partition_sequence () =
  let vl = 16 in
  let k_todo = ref (Mask.full vl) in
  let k_stop = ref (m "0000001010000001") in
  let partitions = ref [] in
  let guard = ref 0 in
  while Mask.any !k_todo do
    incr guard;
    if !guard > vl then Alcotest.fail "VPL did not converge";
    let k_safe = Mask.kftm_exc ~write:!k_todo !k_stop in
    partitions := Mask.to_list k_safe :: !partitions;
    k_todo := Mask.kandn k_safe !k_todo;
    k_stop := Mask.kand !k_stop !k_todo
  done;
  Alcotest.(check (list (list int)))
    "partitions"
    [ [ 0; 1; 2; 3; 4; 5 ]; [ 6; 7 ]; [ 8; 9; 10; 11; 12; 13; 14 ]; [ 15 ] ]
    (List.rev !partitions)

(* ---------------- VPSLCTLAST (§3.5) ---------------- *)

let vletters =
  Vreg.of_array
    (Array.init 16 (fun i -> Value.Int (Char.code 'a' + i)))

let test_slctlast_paper () =
  (* k1 = 0 0 0 1 1 1 1 1 0...: last set lane is 7 -> value 'h' *)
  let k = m "0001111100000000" in
  let out = Vreg.vpslctlast k vletters in
  for i = 0 to 15 do
    Alcotest.check value "lane" (Value.Int (Char.code 'h')) (Vreg.get out i)
  done

let test_slctlast_empty_mask_selects_last () =
  let out = Vreg.vpslctlast (Mask.none 16) vletters in
  Alcotest.check value "lane0" (Value.Int (Char.code 'p')) (Vreg.get out 0)

(* ---------------- VPCONFLICTM (§3.6) ---------------- *)

let test_conflictm_paper_unmasked () =
  (* v1 = 1 2 3 4 5 6 7 8 9 1 5 7 9 9 a a ; v2 = 0 0 0 1 5 7 9 2 0 2 3 4 0 9 a a *)
  let v1 = Vreg.of_int_list [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 1; 5; 7; 9; 9; 10; 10 ] in
  let v2 = Vreg.of_int_list [ 0; 0; 0; 1; 5; 7; 9; 2; 0; 2; 3; 4; 0; 9; 10; 10 ] in
  check_mask "paper example 1" (m "0000001010000001") (Vreg.vpconflictm v1 v2)

let test_conflictm_paper_masked () =
  let v1 = Vreg.of_int_list [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 1; 5; 7; 9; 9; 10; 10 ] in
  let v2 = Vreg.of_int_list [ 0; 0; 0; 1; 5; 7; 9; 2; 0; 2; 3; 4; 0; 9; 10; 10 ] in
  let k2 = m "0000000011111111" in
  check_mask "paper example 2" (m "0000000000000001")
    (Vreg.vpconflictm ~enabled:k2 v1 v2)

let test_conflictm_no_conflicts () =
  let v = Vreg.of_int_list (List.init 16 (fun i -> i)) in
  check_mask "disjoint" (Mask.none 16) (Vreg.vpconflictm v v)

let test_conflictm_all_same () =
  (* every lane writes and reads index 5: each lane conflicts with its
     predecessor -> serialization point at every lane after the first *)
  let v = Vreg.broadcast 16 (Value.Int 5) in
  check_mask "serialize" (m "0111111111111111") (Vreg.vpconflictm v v)

(* ---------------- Vreg odds and ends ---------------- *)

let test_binop_merge_masking () =
  let a = Vreg.of_int_list [ 1; 2; 3; 4 ] in
  let b = Vreg.of_int_list [ 10; 20; 30; 40 ] in
  let dst = Vreg.of_int_list [ -1; -1; -1; -1 ] in
  let out = Vreg.binop_mask (m "0101") Value.Add ~dst a b in
  Alcotest.check value "lane0 kept" (Value.Int (-1)) (Vreg.get out 0);
  Alcotest.check value "lane1 set" (Value.Int 22) (Vreg.get out 1);
  Alcotest.check value "lane3 set" (Value.Int 44) (Vreg.get out 3)

let test_cmp_mask_write_masked () =
  let a = Vreg.of_int_list [ 1; 5; 1; 5 ] in
  let b = Vreg.broadcast 4 (Value.Int 3) in
  check_mask "lt under write" (m "1000") (Vreg.cmp_mask (m "1100") Value.Lt a b)

let test_reduce () =
  let v = Vreg.of_int_list [ 1; 2; 3; 4 ] in
  (* lanes 0, 1 and 3 are enabled *)
  Alcotest.check value "sum" (Value.Int 7)
    (Vreg.reduce (m "1101") Value.Add ~init:(Value.Int 0) v)

(* ---------------- QCheck properties ---------------- *)

let gen_mask vl =
  QCheck2.Gen.(map (fun l -> Mask.of_list vl l)
    (list_size (int_bound vl) (int_bound (vl - 1))))

let prop_kftm_exc_subset =
  QCheck2.Test.make ~name:"kftm_exc result is a subset of the write mask"
    ~count:500
    QCheck2.Gen.(pair (gen_mask 16) (gen_mask 16))
    (fun (w, s) ->
      let r = Mask.kftm_exc ~write:w s in
      Mask.equal (Mask.kand r w) r)

let prop_kftm_inc_exc_relation =
  QCheck2.Test.make
    ~name:"kftm_inc = first-stop-prefix; exc consumes a leading stop"
    ~count:500
    QCheck2.Gen.(pair (gen_mask 16) (gen_mask 16))
    (fun (w, s) ->
      let e = Mask.kftm_exc ~write:w s in
      let i = Mask.kftm_inc ~write:w s in
      match (Mask.first_set w, Mask.first_set (Mask.kand w s)) with
      | None, _ -> Mask.is_empty e && Mask.is_empty i
      | Some _, None ->
          (* no enabled stop: both cover the whole write mask *)
          Mask.equal e w && Mask.equal i w
      | Some fw, Some fs when fs = fw ->
          (* leading stop: inc = that lane alone; exc runs past it *)
          Mask.equal i (Mask.of_list 16 [ fs ]) && Mask.get e fs
      | Some _, Some fs ->
          (* ordinary stop: inc = exc plus the stop lane *)
          Mask.equal i (Mask.kor e (Mask.of_list 16 [ fs ])))

let prop_kftm_prefix_contiguous =
  QCheck2.Test.make
    ~name:"kftm output is a contiguous prefix of the write mask's lanes"
    ~count:500
    QCheck2.Gen.(pair (gen_mask 16) (gen_mask 16))
    (fun (w, s) ->
      let r = Mask.kftm_exc ~write:w s in
      (* no enabled write lane below a set output lane may be unset *)
      let ok = ref true in
      let seen_gap = ref false in
      for i = 0 to 15 do
        if Mask.get w i then
          if Mask.get r i then (if !seen_gap then ok := false)
          else seen_gap := true
      done;
      !ok)

let prop_vpl_always_converges =
  QCheck2.Test.make
    ~name:"VPL partition iteration always converges within VL rounds"
    ~count:500
    QCheck2.Gen.(pair (gen_mask 16) (gen_mask 16))
    (fun (todo0, stop0) ->
      let k_todo = ref todo0 and k_stop = ref stop0 in
      let rounds = ref 0 in
      while Mask.any !k_todo && !rounds <= 17 do
        incr rounds;
        let k_safe = Mask.kftm_exc ~write:!k_todo !k_stop in
        k_todo := Mask.kandn k_safe !k_todo;
        k_stop := Mask.kand !k_stop !k_todo
      done;
      !rounds <= 16)

let prop_conflictm_lane0_clear =
  QCheck2.Test.make ~name:"vpconflictm never marks lane 0" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (return 16) (int_bound 7))
        (list_size (return 16) (int_bound 7)))
    (fun (a, b) ->
      let k = Vreg.vpconflictm (Vreg.of_int_list a) (Vreg.of_int_list b) in
      not (Mask.get k 0))

let prop_slctlast_uniform =
  QCheck2.Test.make ~name:"vpslctlast broadcasts a single value" ~count:300
    QCheck2.Gen.(pair (gen_mask 16) (list_size (return 16) (int_bound 100)))
    (fun (k, vals) ->
      let out = Vreg.vpslctlast k (Vreg.of_int_list vals) in
      let v0 = Vreg.get out 0 in
      Array.for_all (fun x -> Value.equal x v0) (Vreg.to_array out))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_kftm_exc_subset;
      prop_kftm_inc_exc_relation;
      prop_kftm_prefix_contiguous;
      prop_vpl_always_converges;
      prop_conflictm_lane0_clear;
      prop_slctlast_uniform;
    ]

let suite =
  [
    Alcotest.test_case "of_bits roundtrip" `Quick test_of_bits_roundtrip;
    Alcotest.test_case "mask boolean ops" `Quick test_bool_ops;
    Alcotest.test_case "first/last/popcount" `Quick test_first_last;
    Alcotest.test_case "iota masks" `Quick test_iota;
    Alcotest.test_case "KFTM.EXC paper example" `Quick test_kftm_exc_paper;
    Alcotest.test_case "KFTM.INC paper example" `Quick test_kftm_inc_paper;
    Alcotest.test_case "KFTM with no stop bits" `Quick test_kftm_no_stop;
    Alcotest.test_case "KFTM.EXC consumes leading stop" `Quick
      test_kftm_exc_consumes_leading_stop;
    Alcotest.test_case "KFTM.INC stop at first lane" `Quick
      test_kftm_inc_stop_at_first;
    Alcotest.test_case "VPL partition sequence (§3.6 ex. 1)" `Quick
      test_vpl_partition_sequence;
    Alcotest.test_case "VPSLCTLAST paper example" `Quick test_slctlast_paper;
    Alcotest.test_case "VPSLCTLAST empty mask" `Quick
      test_slctlast_empty_mask_selects_last;
    Alcotest.test_case "VPCONFLICTM paper example (unmasked)" `Quick
      test_conflictm_paper_unmasked;
    Alcotest.test_case "VPCONFLICTM paper example (masked)" `Quick
      test_conflictm_paper_masked;
    Alcotest.test_case "VPCONFLICTM no conflicts" `Quick
      test_conflictm_no_conflicts;
    Alcotest.test_case "VPCONFLICTM full serialization" `Quick
      test_conflictm_all_same;
    Alcotest.test_case "merge masking" `Quick test_binop_merge_masking;
    Alcotest.test_case "write-masked compare" `Quick test_cmp_mask_write_masked;
    Alcotest.test_case "masked reduce" `Quick test_reduce;
  ]
  @ qcheck_cases

test/test_workloads.pp.ml: Alcotest Fv_core Fv_mem Fv_vectorizer Fv_workloads List String

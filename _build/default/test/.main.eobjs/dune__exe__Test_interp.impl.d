test/test_interp.pp.ml: Alcotest Array Fv_ir Fv_isa Fv_mem Fv_trace Latency List String Value

test/test_semantics.pp.ml: Alcotest Array Fv_core Fv_ir Fv_isa Fv_mem Fv_ooo Fv_trace Fv_vectorizer Fv_vir Latency List Printf Random Result String Value

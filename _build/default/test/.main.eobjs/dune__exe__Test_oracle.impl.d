test/test_oracle.pp.ml: Alcotest Array Fv_core Fv_ir Fv_isa Fv_mem Fv_vectorizer List Random Value

test/test_memory.pp.ml: Alcotest Fv_isa Fv_mem Fv_memsys Printf Value

test/test_simd.pp.ml: Alcotest Array Fv_ir Fv_isa Fv_mem Fv_rtm Fv_simd Fv_vectorizer Fv_vir List Mask Printf Result Value

test/test_integration.pp.ml: Alcotest Fmt Fv_core Fv_workloads List String

test/test_vectorizer.pp.ml: Alcotest Fv_ir Fv_isa Fv_pdg Fv_simd Fv_vectorizer Fv_vir List String Value

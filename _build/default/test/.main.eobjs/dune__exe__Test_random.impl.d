test/test_random.pp.ml: Array Fmt Fv_core Fv_ir Fv_isa Fv_mem Fv_simd Fv_vectorizer List QCheck2 QCheck_alcotest Value

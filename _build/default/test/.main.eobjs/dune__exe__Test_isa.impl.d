test/test_isa.pp.ml: Alcotest Array Char Fv_isa List Mask QCheck2 QCheck_alcotest Value Vreg

test/main.pp.ml: Alcotest Test_integration Test_interp Test_isa Test_memory Test_ooo Test_oracle Test_pdg Test_random Test_semantics Test_simd Test_vectorizer Test_workloads

test/test_pdg.pp.ml: Alcotest Fv_ir Fv_pdg List Printf String

test/test_ooo.pp.ml: Alcotest Array Fv_ir Fv_isa Fv_mem Fv_ooo Fv_profiler Fv_trace Latency Printf Random Value

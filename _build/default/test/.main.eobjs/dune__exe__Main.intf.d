test/main.pp.mli:

(** Randomized whole-pipeline property tests.

    Generates random loops from the grammar the vectorizer supports —
    plain element-wise bodies, reductions, if/else diamonds, conditional
    scalar updates, early exits, and runtime memory conflicts — together
    with random data and random vector lengths, and checks that the
    FlexVec-vectorized program (and the wholesale-speculation baseline)
    produce exactly the scalar interpreter's memory and live-outs. *)

open Fv_isa
module B = Fv_ir.Builder
module Memory = Fv_mem.Memory
module Oracle = Fv_core.Oracle
module G = QCheck2.Gen

type case = {
  label : string;
  loop : Fv_ir.Ast.loop;
  mem : Memory.t;
  env : (string * Value.t) list;
  vl : int;
}

let pp_case c =
  Fmt.str "%s (vl=%d)@.%a" c.label c.vl Fv_ir.Pp.pp_loop c.loop

(* small positive arrays *)
let gen_array n = G.array_size (G.return n) (G.int_range 0 999)

let gen_vl = G.oneofl [ 4; 8; 16 ]
let gen_trip = G.oneofl [ 0; 1; 7; 16; 17; 33; 61; 64 ]

(* an arithmetic expression over a[i], constants, and given scalars *)
let gen_expr ~vars : Fv_ir.Ast.expr G.t =
  let open G in
  sized_size (int_bound 2)
  @@ fix (fun self n ->
         let leaf =
           oneof
             ([ map B.int (int_range 0 50); return B.(load "a" (var "i")) ]
             @ List.map (fun v -> return (B.var v)) vars)
         in
         if n = 0 then leaf
         else
           oneof
             [
               leaf;
               map3
                 (fun op l r -> Fv_ir.Ast.Binop (op, l, r))
                 (oneofl Value.[ Add; Sub; Mul; Min; Max ])
                 (self (n - 1)) (self (n - 1));
             ])

let with_arrays ~trip k =
  let open G in
  let* a = gen_array (max 1 trip) in
  let* b = gen_array (max 1 trip) in
  let mem () =
    let m = Memory.create () in
    ignore (Memory.alloc_ints m "a" a);
    ignore (Memory.alloc_ints m "b" b);
    m
  in
  k mem

(* ---------------- loop generators per pattern ---------------- *)

let gen_plain : case G.t =
  let open G in
  let* trip = gen_trip and* vl = gen_vl in
  with_arrays ~trip (fun mem ->
      let* e = gen_expr ~vars:[] in
      let* use_if = bool in
      let body =
        if use_if then
          B.
            [
              if_else
                (load "a" (var "i") % int 3 = int 0)
                [ assign "x" e ]
                [ assign "x" (load "b" (var "i")) ];
              store "b" (var "i") (var "x");
            ]
        else B.[ store "b" (var "i") e ]
      in
      return
        {
          label = "plain";
          loop = B.(loop ~name:"plain" ~index:"i" ~hi:(int trip)) body;
          mem = mem ();
          env = [];
          vl;
        })

let gen_reduction : case G.t =
  let open G in
  let* trip = gen_trip and* vl = gen_vl in
  with_arrays ~trip (fun mem ->
      let* op = oneofl Value.[ Add; Min; Max ] in
      let* guarded = bool in
      let red = B.(assign "s" (Fv_ir.Ast.Binop (op, var "s", load "a" (var "i")))) in
      let body =
        if guarded then B.[ if_ (load "b" (var "i") > int 300) [ red ] ]
        else [ red ]
      in
      return
        {
          label = "reduction";
          loop =
            B.(loop ~name:"red" ~index:"i" ~hi:(int trip) ~live_out:[ "s" ]) body;
          mem = mem ();
          env = [ ("s", Value.Int 500) ];
          vl;
        })

let gen_cond_update : case G.t =
  let open G in
  let* trip = gen_trip and* vl = gen_vl in
  with_arrays ~trip (fun mem ->
      let* track_max = bool in
      let* with_arg = bool in
      let cmp = if track_max then B.( > ) else B.( < ) in
      let body =
        B.
          [
            assign "t" (load "a" (var "i"));
            if_
              (cmp (var "t") (var "m"))
              ([ assign "m" (var "t") ]
              @ if with_arg then [ B.assign "arg" (B.var "i") ] else []);
          ]
      in
      return
        {
          label = "cond_update";
          loop =
            B.(
              loop ~name:"cu" ~index:"i" ~hi:(int trip)
                ~live_out:(("m" :: if with_arg then [ "arg" ] else [])))
              body;
          mem = mem ();
          env =
            [ ("m", Value.Int (if track_max then -1 else 1500)); ("arg", Value.Int (-1)) ];
          vl;
        })

let gen_early_exit : case G.t =
  let open G in
  let* trip = gen_trip and* vl = gen_vl in
  let* key_at = G.int_bound (max 1 trip * 2) in
  with_arrays ~trip (fun mem ->
      let body =
        B.
          [
            assign "v" (load "a" (var "i"));
            if_ (var "v" = var "key") [ assign "pos" (var "i"); break_ ];
            assign "cnt" (var "cnt" + int 1);
          ]
      in
      let m = mem () in
      (* plant the key if it lands inside the range *)
      let key = 424242 in
      (if key_at < trip then Memory.set m "a" key_at (Value.Int key));
      return
        {
          label = "early_exit";
          loop =
            B.(
              loop ~name:"ee" ~index:"i" ~hi:(int trip)
                ~live_out:[ "pos"; "cnt" ])
              body;
          mem = m;
          env = [ ("key", Value.Int key); ("pos", Value.Int (-1)); ("cnt", Value.Int 0) ];
          vl;
        })

let gen_mem_conflict : case G.t =
  let open G in
  let* trip = gen_trip and* vl = gen_vl in
  let buckets = 16 in
  let* idx = G.array_size (G.return (max 1 trip)) (G.int_bound (buckets - 1)) in
  let* guarded = bool in
  with_arrays ~trip (fun mem ->
      let m = mem () in
      ignore (Memory.alloc_ints m "ix" idx);
      ignore (Memory.alloc_ints m "d" (Array.make buckets 100));
      let upd = B.[ assign "j" (load "ix" (var "i"));
                    assign "t" (load "d" (var "j") + load "a" (var "i")) ] in
      let body =
        if guarded then
          upd @ B.[ if_ (var "t" < int 5000) [ store "d" (var "j") (var "t") ] ]
        else upd @ B.[ store "d" (var "j") (var "t") ]
      in
      return
        {
          label = "mem_conflict";
          loop = B.(loop ~name:"mc" ~index:"i" ~hi:(int trip)) body;
          mem = m;
          env = [];
          vl;
        })

let gen_case : case G.t =
  G.oneof [ gen_plain; gen_reduction; gen_cond_update; gen_early_exit; gen_mem_conflict ]

(* ---------------- properties ---------------- *)

let oracle_ok ~style (c : case) =
  match Oracle.check ~vl:c.vl ~style c.loop c.mem c.env with
  | Ok _ -> true
  | Error (Oracle.Not_vectorizable _) -> true (* generator corner: fine *)
  | Error f ->
      QCheck2.Test.fail_reportf "%s: %a" (pp_case c) Oracle.pp_failure f

let prop_flexvec =
  QCheck2.Test.make ~name:"random loops: FlexVec matches the scalar oracle"
    ~count:300 ~print:pp_case gen_case
    (oracle_ok ~style:Fv_vectorizer.Gen.Flexvec)

let prop_wholesale =
  QCheck2.Test.make
    ~name:"random loops: wholesale speculation matches the scalar oracle"
    ~count:150 ~print:pp_case gen_case
    (oracle_ok ~style:Fv_vectorizer.Gen.Wholesale)

let prop_rtm =
  QCheck2.Test.make ~name:"random loops: RTM tiles match the scalar oracle"
    ~count:100 ~print:pp_case gen_case (fun c ->
      match Fv_vectorizer.Gen.vectorize ~vl:c.vl c.loop with
      | Error _ -> true
      | Ok vloop ->
          let ms = Memory.clone c.mem
          and es = Fv_ir.Interp.env_of_list c.env in
          ignore (Fv_ir.Interp.run ms es c.loop);
          let mr = Memory.clone c.mem
          and er = Fv_ir.Interp.env_of_list c.env in
          ignore (Fv_simd.Rtm_run.run ~tile:(2 * c.vl) vloop mr er);
          (match
             (Oracle.compare_memories ms mr, Oracle.compare_env c.loop es er)
           with
          | Ok (), Ok () -> true
          | Error e, _ | _, Error e ->
              QCheck2.Test.fail_reportf "%s: %s" (pp_case c) e))

let suite =
  List.map QCheck_alcotest.to_alcotest [ prop_flexvec; prop_wholesale; prop_rtm ]

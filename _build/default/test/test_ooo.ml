(** Out-of-order pipeline model, branch predictor, profiler. *)

open Fv_isa
module Sink = Fv_trace.Sink
module Uop = Fv_trace.Uop
module Pipeline = Fv_ooo.Pipeline
module B = Fv_ir.Builder
module Memory = Fv_mem.Memory

let run_trace mk n =
  let s = Sink.create () in
  for i = 0 to n - 1 do
    mk s i
  done;
  Pipeline.run s

let test_independent_alu_ipc () =
  let st =
    run_trace
      (fun s i -> Sink.push s (Uop.make ~dst:(Printf.sprintf "r%d" (i mod 32)) Latency.Int_alu))
      50_000
  in
  (* commit width 5 bounds IPC at 5 *)
  Alcotest.(check bool) (Printf.sprintf "ipc %.2f ~ 5" st.ipc) true (st.ipc > 4.8)

let test_serial_chain_ipc_one () =
  let st =
    run_trace (fun s _ -> Sink.push s (Uop.make ~dst:"x" ~srcs:[ "x" ] Latency.Int_alu)) 20_000
  in
  Alcotest.(check bool) (Printf.sprintf "ipc %.2f ~ 1" st.ipc) true
    (st.ipc > 0.95 && st.ipc < 1.05)

let test_latency_respected () =
  (* serial chain of fp divides: ~14 cycles each *)
  let st =
    run_trace (fun s _ -> Sink.push s (Uop.make ~dst:"x" ~srcs:[ "x" ] Latency.Fp_div)) 2_000
  in
  let cpi = float_of_int st.cycles /. 2000. in
  Alcotest.(check bool) (Printf.sprintf "cpi %.1f ~ 14" cpi) true
    (cpi > 13.0 && cpi < 15.5)

let test_load_ports_bound () =
  let st =
    run_trace
      (fun s i -> Sink.push s (Uop.make ~dst:"r" ~addr:(1024 + (i mod 1024)) Latency.Load))
      30_000
  in
  (* two load ports: at most 2 loads per cycle *)
  Alcotest.(check bool) (Printf.sprintf "ipc %.2f <= 2" st.ipc) true (st.ipc <= 2.01)

let test_store_port_bound () =
  let st =
    run_trace
      (fun s i -> Sink.push s (Uop.make ~addr:(1024 + (i mod 1024)) Latency.Store))
      20_000
  in
  Alcotest.(check bool) (Printf.sprintf "ipc %.2f <= 1" st.ipc) true (st.ipc <= 1.01)

let test_predictable_branches_cheap () =
  let st =
    run_trace
      (fun s _ ->
        Sink.push s (Uop.make ~dst:"c" Latency.Int_alu);
        Sink.push s (Uop.branch ~label:"loop" ~taken:true ~srcs:[ "c" ]))
      20_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "miss rate %d/%d low" st.branch_mispredicts st.branch_lookups)
    true
    (float_of_int st.branch_mispredicts /. float_of_int st.branch_lookups < 0.02)

let test_random_branches_hurt () =
  let rng = Random.State.make [| 3 |] in
  let predictable =
    run_trace
      (fun s _ ->
        Sink.push s (Uop.make ~dst:"c" Latency.Int_alu);
        Sink.push s (Uop.branch ~label:"b" ~taken:true ~srcs:[ "c" ]))
      20_000
  in
  let random =
    run_trace
      (fun s _ ->
        Sink.push s (Uop.make ~dst:"c" Latency.Int_alu);
        Sink.push s (Uop.branch ~label:"b" ~taken:(Random.State.bool rng) ~srcs:[ "c" ]))
      20_000
  in
  Alcotest.(check bool) "random branches slower" true
    (random.cycles > 2 * predictable.cycles)

let test_store_to_load_forwarding () =
  (* load immediately after a store to the same address: forwarded, so a
     tight store/load chain runs much faster than a cache round trip *)
  let st =
    run_trace
      (fun s _ ->
        Sink.push s (Uop.make ~dst:"v" ~srcs:[ "v" ] Latency.Int_alu);
        Sink.push s (Uop.make ~srcs:[ "v" ] ~addr:2048 Latency.Store);
        Sink.push s (Uop.make ~dst:"w" ~addr:2048 Latency.Load))
      5_000
  in
  Alcotest.(check bool) "ran" true (st.cycles > 0);
  Alcotest.(check int) "all committed" 15_000 st.uops

let test_empty_trace () =
  let st = Pipeline.run (Sink.create ()) in
  Alcotest.(check int) "cycles" 0 st.cycles

let test_predictor_learns () =
  let p = Fv_ooo.Predictor.create () in
  for _ = 1 to 1000 do
    ignore (Fv_ooo.Predictor.mispredicted p ~label:"b" ~taken:true)
  done;
  Alcotest.(check bool) "low miss rate" true (Fv_ooo.Predictor.miss_rate p < 0.02)

(* ---------------- profiler ---------------- *)

let test_profiler_counts () =
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "a" (Array.init 64 (fun i -> if i mod 8 = 0 then 1000 + i else i)));
  let loop =
    B.(loop ~name:"pr" ~index:"i" ~hi:(int 64) ~live_out:[ "m" ])
      B.[ assign "t" (load "a" (var "i")); if_ (var "t" > var "m") [ assign "m" (var "t") ] ]
  in
  let p =
    Fv_profiler.Profile.profile ~invocations:2 ~other_uops:1000 loop mem
      [ ("m", Value.Int 500) ]
  in
  Alcotest.(check int) "trips" 128 p.trips;
  Alcotest.(check bool) "avg trip" true (p.avg_trip = 64.0);
  Alcotest.(check bool) "deps counted" true (p.dep_events > 0);
  Alcotest.(check bool) "evl finite" true (p.effective_vl > 1.0);
  Alcotest.(check bool) "coverage in (0,1)" true
    (p.coverage > 0.0 && p.coverage < 1.0);
  Alcotest.(check bool) "mem ratio sane" true (p.mem_ratio > 0.0 && p.mem_ratio < 2.0)

let test_profiler_mem_conflict_window () =
  (* every iteration writes the bucket the next one reads: the windowed
     conflict detector must see ~n dependencies -> EVL ~ 1 *)
  let n = 64 in
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "ix" (Array.make n 5));
  ignore (Memory.alloc_ints mem "d" (Array.make 16 0));
  let loop =
    B.(loop ~name:"w" ~index:"i" ~hi:(int n))
      B.[
        assign "j" (load "ix" (var "i"));
        assign "t" (load "d" (var "j") + int 1);
        store "d" (var "j") (var "t");
      ]
  in
  let p = Fv_profiler.Profile.profile loop mem [] in
  Alcotest.(check bool)
    (Printf.sprintf "evl %.1f small" p.effective_vl)
    true (p.effective_vl < 2.0)

let suite =
  [
    Alcotest.test_case "independent ALU IPC ~ commit width" `Quick
      test_independent_alu_ipc;
    Alcotest.test_case "serial chain IPC ~ 1" `Quick test_serial_chain_ipc_one;
    Alcotest.test_case "execution latency respected" `Quick test_latency_respected;
    Alcotest.test_case "2 load ports bound" `Quick test_load_ports_bound;
    Alcotest.test_case "1 store port bound" `Quick test_store_port_bound;
    Alcotest.test_case "predictable branches cheap" `Quick
      test_predictable_branches_cheap;
    Alcotest.test_case "random branches expensive" `Quick test_random_branches_hurt;
    Alcotest.test_case "store-to-load forwarding" `Quick
      test_store_to_load_forwarding;
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
    Alcotest.test_case "gshare learns" `Quick test_predictor_learns;
    Alcotest.test_case "profiler counters" `Quick test_profiler_counts;
    Alcotest.test_case "profiler conflict window" `Quick
      test_profiler_mem_conflict_window;
  ]

(** Integration tests over the experiment pipeline: every execution
    strategy on a real kernel, the Figure 8 / Table 2 row machinery,
    sweep harness sanity, and report rendering. *)

module E = Fv_core.Experiment
module R = Fv_workloads.Registry

let small_build seed =
  Fv_core.Sweeps.tunable_cond_update ~trip:256 ~update_rate:0.02 ~near_rate:0.2
    seed

let test_all_strategies_run () =
  let base = E.run_workload ~invocations:2 ~seed:1 E.Scalar small_build in
  Alcotest.(check bool) "scalar cycles > 0" true (base.cycles > 0);
  List.iter
    (fun s ->
      let r = E.run_workload ~invocations:2 ~seed:1 s small_build in
      Alcotest.(check bool)
        (Fmt.str "%a produced cycles" (Fmt.of_to_string E.show_strategy) s)
        true (r.cycles > 0);
      Alcotest.(check bool)
        (Fmt.str "%a emitted fewer uops than scalar"
           (Fmt.of_to_string E.show_strategy) s)
        true
        (r.uops < base.uops))
    [ E.Flexvec; E.Wholesale; E.Rtm 64 ]

let test_traditional_falls_back () =
  let r = E.run_workload ~invocations:1 ~seed:1 E.Traditional small_build in
  Alcotest.(check bool) "fell back to scalar" true r.fell_back_to_scalar

let test_amdahl () =
  let s = E.overall_speedup ~coverage:0.5 ~hot:2.0 in
  Alcotest.(check (float 1e-9)) "amdahl" (1. /. 0.75) s;
  Alcotest.(check (float 1e-9)) "no coverage" 1.0
    (E.overall_speedup ~coverage:0.0 ~hot:10.0);
  Alcotest.(check bool) "bounded by 1/(1-c)" true
    (E.overall_speedup ~coverage:0.3 ~hot:1e9 < 1. /. 0.7 +. 1e-6)

let test_figure8_row () =
  let row = Fv_core.Figure8.run_row (R.find "445.gobmk") in
  Alcotest.(check bool) "decision made" true row.decision.vectorize;
  Alcotest.(check bool) "hot speedup sane" true (row.hot > 0.5 && row.hot < 20.);
  Alcotest.(check bool) "overall between 1/(1-c) bound" true
    (row.overall < 1. /. (1. -. row.spec.coverage) +. 1e-6);
  Alcotest.(check string) "mix" "KFTM, VPSLCTLAST" row.mix_measured

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Fv_core.Figure8.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 1.0 (Fv_core.Figure8.geomean [])

let test_rtm_sweep_tiny () =
  let pts = Fv_core.Sweeps.rtm_tile_sweep ~tiles:[ 32; 256 ] ~trip:512 () in
  Alcotest.(check int) "two points" 2 (List.length pts);
  let small = List.nth pts 0 and big = List.nth pts 1 in
  Alcotest.(check bool) "smaller tiles cost more" true
    (small.rel_to_ff >= big.rel_to_ff -. 0.02)

let test_strategy_sweep_tiny () =
  let pts =
    Fv_core.Sweeps.strategy_sweep ~rates:[ 0.0; 0.2 ] ~trip:512
      ~pattern:`Cond_update ()
  in
  let quiet = List.nth pts 0 and noisy = List.nth pts 1 in
  Alcotest.(check bool) "wholesale collapses under frequent deps" true
    (noisy.wholesale_speedup < quiet.wholesale_speedup);
  Alcotest.(check bool) "flexvec degrades more gracefully" true
    (noisy.flexvec_speedup > noisy.wholesale_speedup)

let test_report_table () =
  let t =
    Fv_core.Report.table [ [ "a"; "bb" ]; [ "ccc"; "d" ]; [ "e"; "ffff" ] ]
  in
  let lines = String.split_on_char '\n' t in
  Alcotest.(check bool) "has border rows" true (List.length lines >= 6);
  let widths = List.map String.length (List.filter (fun l -> l <> "") lines) in
  Alcotest.(check bool) "all lines same width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_bar_chart () =
  let c = Fv_core.Report.bar_chart [ ("x", 1.0); ("yy", 2.0) ] in
  Alcotest.(check bool) "renders" true (String.length c > 0);
  Alcotest.(check int) "two rows" 2 (List.length (String.split_on_char '\n' c))

let suite =
  [
    Alcotest.test_case "all strategies execute" `Quick test_all_strategies_run;
    Alcotest.test_case "traditional falls back on FlexVec loops" `Quick
      test_traditional_falls_back;
    Alcotest.test_case "Amdahl scaling" `Quick test_amdahl;
    Alcotest.test_case "Figure 8 row pipeline" `Quick test_figure8_row;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "RTM sweep (tiny)" `Quick test_rtm_sweep_tiny;
    Alcotest.test_case "strategy sweep (tiny)" `Quick test_strategy_sweep_tiny;
    Alcotest.test_case "report table" `Quick test_report_table;
    Alcotest.test_case "bar chart" `Quick test_bar_chart;
  ]

(** Memory model and cache hierarchy. *)

open Fv_isa
module Memory = Fv_mem.Memory
module Cache = Fv_memsys.Cache
module Hierarchy = Fv_memsys.Hierarchy

let value = Alcotest.testable Value.pp Value.equal

let test_alloc_load_store () =
  let m = Memory.create () in
  let base = Memory.alloc_ints m "a" [| 10; 20; 30 |] in
  Alcotest.check value "load" (Value.Int 20) (Memory.load m (base + 1));
  Memory.store m (base + 1) (Value.Int 99);
  Alcotest.check value "store" (Value.Int 99) (Memory.get m "a" 1)

let test_guard_gaps_fault () =
  let m = Memory.create () in
  let base_a = Memory.alloc_ints m "a" [| 1; 2 |] in
  ignore (Memory.alloc_ints m "b" [| 3; 4 |]);
  (* just past a's end is a guard gap, not b *)
  (match Memory.load_opt m (base_a + 2) with
  | Error f -> Alcotest.(check bool) "read fault" false f.write
  | Ok _ -> Alcotest.fail "expected fault");
  match Memory.store_opt m (base_a + 2) (Value.Int 0) with
  | Error f -> Alcotest.(check bool) "write fault" true f.write
  | Ok _ -> Alcotest.fail "expected fault"

let test_duplicate_alloc_rejected () =
  let m = Memory.create () in
  ignore (Memory.alloc_ints m "a" [| 1 |]);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Memory.alloc: duplicate allocation \"a\"") (fun () ->
      ignore (Memory.alloc_ints m "a" [| 2 |]))

let test_snapshot_restore () =
  let m = Memory.create () in
  ignore (Memory.alloc_ints m "a" [| 1; 2; 3 |]);
  let snap = Memory.snapshot m in
  Memory.set m "a" 0 (Value.Int 42);
  Memory.restore m snap;
  Alcotest.check value "restored" (Value.Int 1) (Memory.get m "a" 0)

let test_clone_is_independent () =
  let m = Memory.create () in
  ignore (Memory.alloc_ints m "a" [| 1 |]);
  let c = Memory.clone m in
  Memory.set m "a" 0 (Value.Int 7);
  Alcotest.check value "clone unchanged" (Value.Int 1) (Memory.get c "a" 0);
  Alcotest.(check bool) "contents differ" false (Memory.equal_contents m c)

let test_cache_hit_miss () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~ways:2 () in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit" true (Cache.access c 0);
  Alcotest.(check bool) "same line" true (Cache.access c 15);
  Alcotest.(check bool) "next line" false (Cache.access c 16)

let test_cache_lru_eviction () =
  (* 1KB, 2-way, 64B lines -> 16 lines, 8 sets; three lines mapping to
     the same set evict the least recently used *)
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~ways:2 () in
  let line_elems = 16 and sets = 8 in
  let addr_of_line l = l * line_elems in
  let l0 = 0 and l1 = sets and l2 = 2 * sets in
  ignore (Cache.access c (addr_of_line l0));
  ignore (Cache.access c (addr_of_line l1));
  ignore (Cache.access c (addr_of_line l0));
  (* l1 is now LRU; l2 evicts it *)
  ignore (Cache.access c (addr_of_line l2));
  Alcotest.(check bool) "l0 still cached" true (Cache.access c (addr_of_line l0));
  Alcotest.(check bool) "l1 evicted" false (Cache.access c (addr_of_line l1))

let test_hierarchy_latencies () =
  let h = Hierarchy.table1 ~prefetch_depth:0 () in
  Alcotest.(check int) "cold: memory" 200 (Hierarchy.access h 4096);
  Alcotest.(check int) "L1 hit" 4 (Hierarchy.access h 4096);
  (* evict from L1 only: touch enough distinct lines to roll L1 over *)
  for l = 1 to 600 do
    ignore (Hierarchy.access h (4096 + (l * 16)))
  done;
  let lat = Hierarchy.access h 4096 in
  Alcotest.(check bool) "L2-or-L3 hit after L1 eviction" true
    (lat = 12 || lat = 25)

let test_prefetcher_hides_stream () =
  let h = Hierarchy.table1 () in
  (* walk a long unit-stride stream; after training, line-granule misses
     should mostly disappear *)
  let misses = ref 0 in
  for a = 0 to 16 * 512 do
    if Hierarchy.access h a > 4 then incr misses
  done;
  Alcotest.(check bool)
    (Printf.sprintf "few stream misses (%d)" !misses)
    true (!misses < 20)

let suite =
  [
    Alcotest.test_case "alloc/load/store" `Quick test_alloc_load_store;
    Alcotest.test_case "guard gaps fault" `Quick test_guard_gaps_fault;
    Alcotest.test_case "duplicate alloc rejected" `Quick
      test_duplicate_alloc_rejected;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    Alcotest.test_case "clone independence" `Quick test_clone_is_independent;
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "hierarchy latencies" `Quick test_hierarchy_latencies;
    Alcotest.test_case "stream prefetcher" `Quick test_prefetcher_hides_stream;
  ]

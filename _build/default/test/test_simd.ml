(** Vector emulator semantics: first-faulting behaviour, masked memory
    ops, fallback, and the transactional runner. *)

open Fv_isa
open Fv_vir.Inst
module B = Fv_ir.Builder
module Memory = Fv_mem.Memory
module Exec = Fv_simd.Exec
module Rtm_run = Fv_simd.Rtm_run

let value = Alcotest.testable Value.pp Value.equal
let mask = Alcotest.testable Mask.pp Mask.equal

(* run a hand-written strip program once over [vl] lanes *)
let run_strip ?(vl = 16) ?(trip = 16) ~mem ~env strip =
  let source = B.(loop ~name:"hand" ~index:"i" ~hi:(int trip)) [] in
  let vloop =
    { source; vl; preamble = []; strip; postamble = []; sync = empty_sync }
  in
  let e = Fv_ir.Interp.env_of_list env in
  let stats = Exec.run vloop mem e in
  (stats, e)

let test_load_store_roundtrip () =
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "a" (Array.init 16 (fun i -> i * 2)));
  ignore (Memory.alloc_ints mem "b" (Array.make 16 0));
  let strip =
    [
      I (Kset_loop "k");
      I (Load ("v", "k", "a", Imm (Value.Int 0)));
      I (Store ("k", "b", Imm (Value.Int 0), "v"));
    ]
  in
  let _ = run_strip ~mem ~env:[] strip in
  Alcotest.check value "b[7]" (Value.Int 14) (Memory.get mem "b" 7)

let test_masked_load_skips_disabled_lanes () =
  (* array of 8 elements, VL 16: k_loop masks the missing tail, so no
     fault occurs even though lanes 8..15 would be out of bounds *)
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "a" (Array.init 8 (fun i -> i)));
  ignore (Memory.alloc_ints mem "b" (Array.make 8 0));
  let strip =
    [
      I (Kset_loop "k");
      I (Load ("v", "k", "a", Imm (Value.Int 0)));
      I (Store ("k", "b", Imm (Value.Int 0), "v"));
    ]
  in
  let stats, _ = run_strip ~trip:8 ~mem ~env:[] strip in
  Alcotest.(check int) "one strip" 1 stats.Exec.strips;
  Alcotest.check value "b[7]" (Value.Int 7) (Memory.get mem "b" 7)

let test_plain_gather_faults_on_bad_index () =
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "a" (Array.make 16 1));
  ignore (Memory.alloc_ints mem "ix" (Array.init 16 (fun i -> if i = 9 then 1_000_000 else i)));
  let strip =
    [
      I (Kset_loop "k");
      I (Load ("vi", "k", "ix", Imm (Value.Int 0)));
      I (Gather ("v", "k", "a", "vi"));
    ]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (run_strip ~mem ~env:[] strip);
       false
     with Memory.Fault _ -> true)

let test_gather_ff_truncates_mask () =
  (* §3.3.1: a fault on a speculative lane zeroes the mask from that
     lane rightward; earlier lanes complete *)
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "a" (Array.init 16 (fun i -> 100 + i)));
  ignore
    (Memory.alloc_ints mem "ix"
       (Array.init 16 (fun i -> if i = 6 then 1_000_000 else i)));
  let strip =
    [
      I (Kset_loop "k");
      I (Load ("vi", "k", "ix", Imm (Value.Int 0)));
      I (Kmov ("kff", "k"));
      I (Gather_ff ("v", "kff", "a", "vi"));
      I (Extract ("done_lanes", "kff", "v"));
    ]
  in
  let mem2 = Memory.clone mem in
  let _, e = run_strip ~mem:mem2 ~env:[ ("done_lanes", Value.Int 0) ] strip in
  (* last completed lane is 5 -> value 105 *)
  Alcotest.check value "last completed" (Value.Int 105)
    (Fv_ir.Interp.env_get e "done_lanes")

let test_load_ff_nonspeculative_lane_faults () =
  (* a fault on the FIRST enabled lane is delivered for real *)
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "a" [| 1; 2 |]);
  let strip =
    [ I (Kset_loop "k"); I (Kmov ("kff", "k")); I (Load_ff ("v", "kff", "a", Imm (Value.Int 100))) ]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (run_strip ~mem ~env:[] strip);
       false
     with Memory.Fault _ -> true)

let test_slctlast_and_extract () =
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "a" (Array.init 16 (fun i -> i * 10)));
  let strip =
    [
      I (Kset_loop "k");
      I (Load ("v", "k", "a", Imm (Value.Int 0)));
      I (Cmp ("ksel", Value.Lt, "k", "v", "vhund"));
      I (Extract ("x", "ksel", "v"));
    ]
  in
  let strip = I (Broadcast ("vhund", Imm (Value.Int 95))) :: strip in
  let _, e = run_strip ~mem ~env:[ ("x", Value.Int (-1)) ] strip in
  (* last lane with v < 95 is lane 9 (90) *)
  Alcotest.check value "x" (Value.Int 90) (Fv_ir.Interp.env_get e "x")

let test_vpl_guard_detects_nontermination () =
  let mem = Memory.create () in
  let strip =
    [
      I (Kset_loop "k_todo");
      Vpl { label = "bad"; todo = "k_todo"; body = [ I (Kmov ("k_todo", "k_todo")) ] };
    ]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (run_strip ~mem ~env:[] strip);
       false
     with Exec.Vector_exec_error _ -> true)

let test_scatter_lane_order () =
  (* two lanes write the same element: the higher lane must win, like
     scalar iteration order and AVX-512 scatter semantics *)
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "ix" [| 3; 3; 3; 3 |]);
  ignore (Memory.alloc_ints mem "d" (Array.make 8 0));
  let strip =
    [
      I (Kset_loop "k");
      I (Iota "vi");
      I (Load ("vx", "k", "ix", Imm (Value.Int 0)));
      I (Scatter ("k", "d", "vx", "vi"));
    ]
  in
  let _ = run_strip ~vl:4 ~trip:4 ~mem ~env:[] strip in
  Alcotest.check value "last lane wins" (Value.Int 3) (Memory.get mem "d" 3)

(* ---------------- RTM runner ---------------- *)

let early_exit_loop_with_poison () =
  let n = 120 in
  let m = 32 in
  let tab = Array.init m (fun k -> k + 1) in
  let key = 5555 in
  let data = Array.init n (fun i -> i mod m) in
  tab.(data.(40)) <- key;
  for i = 0 to 39 do
    if tab.(data.(i)) = key then data.(i) <- (data.(i) + 1) mod m
  done;
  for i = 41 to n - 1 do
    if i mod 2 = 1 then data.(i) <- 1_000_000
  done;
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "data" data);
  ignore (Memory.alloc_ints mem "tab" tab);
  let loop =
    B.(
      loop ~name:"rtmtest" ~index:"i" ~hi:(int n) ~live_out:[ "hit"; "run" ]
        [
          assign "v" (load "data" (var "i"));
          assign "t" (load "tab" (var "v"));
          if_ (var "t" = var "key") [ assign "hit" (var "i"); break_ ];
          assign "run" (var "run" + int 1);
        ])
  in
  (mem, [ ("key", Value.Int key); ("hit", Value.Int (-1)); ("run", Value.Int 0) ], loop)

let test_rtm_run_equivalence () =
  let mem, env, loop = early_exit_loop_with_poison () in
  let vloop = Result.get_ok (Fv_vectorizer.Gen.vectorize loop) in
  let ms = Memory.clone mem and es = Fv_ir.Interp.env_of_list env in
  ignore (Fv_ir.Interp.run ms es loop);
  List.iter
    (fun tile ->
      let mr = Memory.clone mem and er = Fv_ir.Interp.env_of_list env in
      let r = Rtm_run.run ~tile vloop mr er in
      Alcotest.(check bool)
        (Printf.sprintf "tile %d memory" tile)
        true
        (Memory.equal_contents ms mr);
      Alcotest.check value
        (Printf.sprintf "tile %d hit" tile)
        (Fv_ir.Interp.env_get es "hit")
        (Fv_ir.Interp.env_get er "hit");
      Alcotest.check value
        (Printf.sprintf "tile %d run" tile)
        (Fv_ir.Interp.env_get es "run")
        (Fv_ir.Interp.env_get er "run");
      Alcotest.(check bool)
        (Printf.sprintf "tile %d: tile containing the poison aborted" tile)
        true (r.Rtm_run.aborts >= 1))
    [ 16; 32; 64; 120 ]

let test_rtm_capacity_abort () =
  let n = 4096 in
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "a" (Array.init n (fun i -> i)));
  ignore (Memory.alloc_ints mem "b" (Array.make n 0));
  let loop =
    B.(loop ~name:"cap" ~index:"i" ~hi:(int n))
      B.[ store "b" (var "i") (load "a" (var "i") + int 1) ]
  in
  let vloop = Result.get_ok (Fv_vectorizer.Gen.vectorize loop) in
  let mr = Memory.clone mem and er = Fv_ir.Interp.env_of_list [] in
  (* one giant tile: footprint 2 * 4096 accesses > 6144 -> capacity abort *)
  let r = Rtm_run.run ~tile:n vloop mr er in
  Alcotest.(check int) "aborted" 1 r.Rtm_run.aborts;
  (* the scalar re-execution still produced the right answer *)
  Alcotest.check value "b[100]" (Value.Int 101) (Memory.get mr "b" 100);
  (* small tiles commit *)
  let mr = Memory.clone mem and er = Fv_ir.Interp.env_of_list [] in
  let r = Rtm_run.run ~tile:256 vloop mr er in
  Alcotest.(check int) "no aborts" 0 r.Rtm_run.aborts

let test_rtm_atomically () =
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "a" [| 1; 2 |]);
  let env = Fv_ir.Interp.env_of_list [ ("x", Value.Int 0) ] in
  let stats = Fv_rtm.Rtm.fresh_stats () in
  (* committed transaction keeps its effects *)
  (match
     Fv_rtm.Rtm.atomically ~stats mem env (fun () ->
         Memory.set mem "a" 0 (Value.Int 7);
         Fv_ir.Interp.env_set env "x" (Value.Int 1))
   with
  | Fv_rtm.Rtm.Committed () -> ()
  | Fv_rtm.Rtm.Aborted _ -> Alcotest.fail "unexpected abort");
  Alcotest.check value "a[0]" (Value.Int 7) (Memory.get mem "a" 0);
  (* aborted transaction rolls everything back *)
  (match
     Fv_rtm.Rtm.atomically ~stats mem env (fun () ->
         Memory.set mem "a" 0 (Value.Int 99);
         Fv_ir.Interp.env_set env "x" (Value.Int 2);
         ignore (Memory.load mem 1))
   with
  | Fv_rtm.Rtm.Committed _ -> Alcotest.fail "expected abort"
  | Fv_rtm.Rtm.Aborted _ -> ());
  Alcotest.check value "a[0] rolled back" (Value.Int 7) (Memory.get mem "a" 0);
  Alcotest.check value "x rolled back" (Value.Int 1) (Fv_ir.Interp.env_get env "x");
  Alcotest.(check int) "stats" 1 stats.Fv_rtm.Rtm.aborts

let test_kftm_in_emulator_matches_isa () =
  let mem = Memory.create () in
  let strip =
    [
      I (Kset_loop "w");
      I (Kset_loop "s0");
      I (Knot ("s", "s0"));  (* all zeros over the active width? no: knot of full = none *)
      I (Kftm_exc ("e", "w", "s"));
      I (Kftm_inc ("n", "w", "s"));
    ]
  in
  let source = B.(loop ~name:"k" ~index:"i" ~hi:(int 16)) [] in
  let vloop = { source; vl = 16; preamble = []; strip; postamble = []; sync = empty_sync } in
  let e = Fv_ir.Interp.env_of_list [] in
  ignore (Exec.run vloop mem e);
  ignore mask;
  ()

let suite =
  [
    Alcotest.test_case "unit-stride load/store" `Quick test_load_store_roundtrip;
    Alcotest.test_case "masked tail skips faults" `Quick
      test_masked_load_skips_disabled_lanes;
    Alcotest.test_case "plain gather faults" `Quick
      test_plain_gather_faults_on_bad_index;
    Alcotest.test_case "VPGATHERFF truncates the mask (§3.3.1)" `Quick
      test_gather_ff_truncates_mask;
    Alcotest.test_case "FF non-speculative lane faults" `Quick
      test_load_ff_nonspeculative_lane_faults;
    Alcotest.test_case "VPSLCTLAST extract" `Quick test_slctlast_and_extract;
    Alcotest.test_case "VPL non-termination guard" `Quick
      test_vpl_guard_detects_nontermination;
    Alcotest.test_case "scatter lane order" `Quick test_scatter_lane_order;
    Alcotest.test_case "RTM runner equivalence + aborts" `Quick
      test_rtm_run_equivalence;
    Alcotest.test_case "RTM capacity abort" `Quick test_rtm_capacity_abort;
    Alcotest.test_case "RTM atomically" `Quick test_rtm_atomically;
    Alcotest.test_case "kftm via emulator" `Quick test_kftm_in_emulator_matches_isa;
  ]

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) plus the ablation sweeps for its secondary claims,
   then runs Bechamel micro-benchmarks of the emulated FlexVec
   primitives and the simulation pipeline itself.

   Sections:
     table1         — simulated machine configuration (Table 1)
     figure8        — overall application speedups (Figure 8)
     table2         — coverage / trip counts / instruction mix (Table 2)
     rtm-sweep      — RTM tile-size tuning (§3.3.2, §4.1)
     strategy-sweep — FlexVec vs PACT'13 wholesale speculation (§2)
     trip-sweep     — speedup vs trip count (§5)
     evl-sweep      — speedup vs effective vector length (§5)
     vl-sweep       — ablation over hardware vector length
     strategies     — Figure 8 under FlexVec / wholesale / RTM
     prefetch-ablation — stream prefetcher on/off (§5 memory subsystem)
     micro          — Bechamel micro-benchmarks

   Run a subset with: bench/main.exe table2 figure8 *)

open Fv_core

let section name =
  Printf.printf "\n=== %s %s\n%!" name (String.make (max 1 (70 - String.length name)) '=')

(* ------------------------------------------------------------------ *)

let table1 () =
  section "table1: simulated machine (paper Table 1)";
  let rows =
    [ "Component"; "Configuration" ]
    :: List.map (fun (a, b) -> [ a; b ]) (Fv_ooo.Machine.rows Fv_ooo.Machine.table1)
  in
  print_string (Report.table rows);
  print_newline ();
  let rows =
    [ "FlexVec Instruction"; "Latency(cycles), Throughput" ]
    :: List.map
         (fun (name, cls) ->
           let t = Fv_isa.Latency.timing cls in
           [ name; Printf.sprintf "%d, %d" t.latency t.recip_tput ])
         Fv_isa.Latency.table1_flexvec_rows
  in
  print_string (Report.table rows)

let figure8 () =
  section "figure8: application speedup over the AVX-512 baseline";
  let r = Figure8.run () in
  let rows =
    [ "Benchmark"; "Cvrg"; "Hot speedup"; "Overall"; "Vectorized?"; "Mix emitted" ]
    :: List.map
         (fun (row : Figure8.row) ->
           [
             row.spec.name;
             Report.pct row.spec.coverage;
             Report.f2 row.hot ^ "x";
             Printf.sprintf "%.3fx" row.overall;
             (if row.decision.vectorize then "yes"
              else "no: " ^ String.concat "; " row.decision.reasons);
             row.mix_measured;
           ])
         r.rows
  in
  print_string (Report.table rows);
  Printf.printf "\nGeomean (11 SPEC 2006): %.3fx   [paper: 1.09x]\n"
    r.spec_geomean;
  Printf.printf "Geomean (7 applications): %.3fx   [paper: 1.11x]\n\n"
    r.app_geomean;
  print_endline
    (Report.bar_chart
       (List.map (fun (row : Figure8.row) -> (row.spec.name, row.overall)) r.rows))

let table2 () =
  section "table2: coverage, trip count and instruction mix";
  let rows = Table2.run () in
  let header =
    [ "Benchmark"; "Cvrg (paper)"; "Trip (paper)"; "Trip (sim)"; "EVL";
      "Mix emitted"; "= paper?" ]
  in
  let body =
    List.map
      (fun (r : Table2.row) ->
        [
          r.spec.name;
          Report.pct r.spec.coverage;
          r.spec.paper_trip;
          Report.f1 r.measured_trip;
          Report.f1 r.measured_evl;
          r.measured_mix;
          (if r.mix_matches then "yes" else "NO");
        ])
      rows
  in
  print_string (Report.table (header :: body));
  let matches = List.length (List.filter (fun (r : Table2.row) -> r.mix_matches) rows) in
  Printf.printf "\ninstruction mixes matching the paper: %d / %d\n" matches
    (List.length rows)

let rtm_sweep () =
  section "rtm-sweep: transactional-speculation tile size (paper: 128-256 within 1-2% of FF)";
  let pts = Sweeps.rtm_tile_sweep () in
  let rows =
    [ "Tile"; "RTM cycles"; "FF cycles"; "RTM/FF"; "vs scalar" ]
    :: List.map
         (fun (p : Sweeps.rtm_point) ->
           [
             string_of_int p.tile;
             string_of_int p.rtm_cycles;
             string_of_int p.ff_cycles;
             Report.f2 p.rel_to_ff;
             Report.f2 (float_of_int p.scalar_cycles /. float_of_int p.rtm_cycles) ^ "x";
           ])
         pts
  in
  print_string (Report.table rows)

let strategy_sweep () =
  section "strategy-sweep: FlexVec vs PACT'13 wholesale speculation";
  List.iter
    (fun (label, pattern) ->
      Printf.printf "\n-- %s pattern --\n" label;
      let pts = Sweeps.strategy_sweep ~pattern () in
      let rows =
        [ "Dep rate"; "FlexVec speedup"; "Wholesale speedup" ]
        :: List.map
             (fun (p : Sweeps.strategy_point) ->
               [
                 Printf.sprintf "%.3f" p.rate;
                 Report.f2 p.flexvec_speedup ^ "x";
                 Report.f2 p.wholesale_speedup ^ "x";
               ])
             pts
      in
      print_string (Report.table rows))
    [ ("conditional update", `Cond_update); ("memory conflict", `Mem_conflict) ]

let trip_sweep () =
  section "trip-sweep: speedup vs loop trip count (paper: gains need high trip counts)";
  let pts = Sweeps.trip_sweep () in
  let rows =
    [ "Trip count"; "FlexVec hot speedup" ]
    :: List.map
         (fun (p : Sweeps.trip_point) ->
           [ string_of_int p.trip; Report.f2 p.speedup ^ "x" ])
         pts
  in
  print_string (Report.table rows)

let evl_sweep () =
  section "evl-sweep: speedup vs effective vector length";
  let pts = Sweeps.evl_sweep () in
  let rows =
    [ "Update rate"; "Effective VL"; "FlexVec hot speedup" ]
    :: List.map
         (fun (p : Sweeps.evl_point) ->
           [
             Printf.sprintf "%.3f" p.update_rate;
             Report.f1 p.effective_vl;
             Report.f2 p.speedup ^ "x";
           ])
         pts
  in
  print_string (Report.table rows)

let vl_sweep () =
  section "vl-sweep: ablation over hardware vector length";
  let pts = Sweeps.vl_sweep () in
  let rows =
    [ "VL (lanes)"; "FlexVec hot speedup" ]
    :: List.map
         (fun (p : Sweeps.vl_point) ->
           [ string_of_int p.vl; Report.f2 p.speedup ^ "x" ])
         pts
  in
  print_string (Report.table rows)

let strategies () =
  section "strategies: Figure 8 under each speculation mechanism";
  let pts = Sweeps.benchmark_strategies () in
  let rows =
    [ "Benchmark"; "FlexVec (FF)"; "Wholesale (PACT'13)"; "FlexVec (RTM 256)" ]
    :: List.map
         (fun (p : Sweeps.bench_strategies) ->
           [
             p.bench;
             Printf.sprintf "%.3fx" p.flexvec_overall;
             Printf.sprintf "%.3fx" p.wholesale_overall;
             Printf.sprintf "%.3fx" p.rtm_overall;
           ])
         pts
  in
  print_string (Report.table rows);
  let g f = Figure8.geomean (List.map f pts) in
  Printf.printf "\ngeomeans: flexvec %.3fx | wholesale %.3fx | rtm %.3fx\n"
    (g (fun p -> p.Sweeps.flexvec_overall))
    (g (fun p -> p.Sweeps.wholesale_overall))
    (g (fun p -> p.Sweeps.rtm_overall))

let prefetch_ablation () =
  section "prefetch-ablation: the memory subsystem matters for vector access (§5)";
  let pts = Sweeps.prefetch_ablation () in
  let rows =
    [ "Prefetcher"; "Scalar cycles"; "FlexVec cycles"; "Speedup" ]
    :: List.map
         (fun (p : Sweeps.prefetch_point) ->
           [
             (if p.prefetch then "on" else "off");
             string_of_int p.scalar_cycles2;
             string_of_int p.flexvec_cycles2;
             Report.f2 p.speedup2 ^ "x";
           ])
         pts
  in
  print_string (Report.table rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "micro: Bechamel micro-benchmarks of emulated primitives";
  let open Bechamel in
  let open Fv_isa in
  let vl = 16 in
  let w = Mask.of_bits "1111111111111111" in
  let stop = Mask.of_bits "0000001010000001" in
  let v1 = Vreg.of_int_list [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 1; 5; 7; 9; 9; 10; 10 ] in
  let v2 = Vreg.of_int_list [ 0; 0; 0; 1; 5; 7; 9; 2; 0; 2; 3; 4; 0; 9; 10; 10 ] in
  let built = Fv_workloads.Kernels.h264ref 1 in
  let vloop =
    Result.get_ok (Fv_vectorizer.Gen.vectorize built.Fv_workloads.Kernels.loop)
  in
  let tests =
    [
      Test.make ~name:"kftm_exc (Table 1 row 1)"
        (Staged.stage (fun () -> ignore (Mask.kftm_exc ~write:w stop)));
      Test.make ~name:"vpslctlast (Table 1 row 2)"
        (Staged.stage (fun () -> ignore (Vreg.vpslctlast w v1)));
      Test.make ~name:"vpconflictm (Table 1 row 4)"
        (Staged.stage (fun () -> ignore (Vreg.vpconflictm v1 v2)));
      Test.make ~name:"vectorize h264ref loop (Fig. 6 codegen)"
        (Staged.stage (fun () ->
             ignore
               (Fv_vectorizer.Gen.vectorize built.Fv_workloads.Kernels.loop)));
      Test.make ~name:"PDG build + classify (analysis module)"
        (Staged.stage (fun () ->
             ignore (Fv_pdg.Classify.analyze built.Fv_workloads.Kernels.loop)));
      Test.make ~name:"emulate one h264ref invocation (Figure 8 inner step)"
        (Staged.stage (fun () ->
             let m = Fv_mem.Memory.clone built.Fv_workloads.Kernels.mem in
             let e =
               Fv_ir.Interp.env_of_list built.Fv_workloads.Kernels.env
             in
             ignore (Fv_simd.Exec.run vloop m e)));
    ]
  in
  ignore vl;
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark (Test.make_grouped ~name:"flexvec" ~fmt:"%s %s" tests) in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-55s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-55s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table1", table1);
    ("figure8", figure8);
    ("table2", table2);
    ("rtm-sweep", rtm_sweep);
    ("strategy-sweep", strategy_sweep);
    ("trip-sweep", trip_sweep);
    ("evl-sweep", evl_sweep);
    ("vl-sweep", vl_sweep);
    ("strategies", strategies);
    ("prefetch-ablation", prefetch_ablation);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S (available: %s)\n" name
            (String.concat ", " (List.map fst sections));
          exit 1)
    requested

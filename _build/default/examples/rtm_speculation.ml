(* Hardware-transactional speculation (paper §3.3.2, Figs. 3 and 5f).

   When first-faulting loads are not available, FlexVec strip-mines the
   loop and wraps each tile's vector code in a transaction: a
   speculative fault aborts the tile, which is rolled back and re-run
   scalar. The tile size trades XBEGIN/XEND overhead against abort
   cost and capacity: the paper reports 128-256 iterations as the sweet
   spot on Haswell.

   Run with: dune exec examples/rtm_speculation.exe *)

open Fv_isa
module Memory = Fv_mem.Memory

let () =
  (* an early-exit loop with poisoned indices past the hit position:
     plain vector loads fault, so every tile containing the hit aborts *)
  let n = 2048 in
  let st = Random.State.make [| 21 |] in
  let m = 128 in
  let tab = Array.init m (fun k -> 5 + k) in
  let key = 31337 in
  let data = Array.init n (fun _ -> Random.State.int st m) in
  let hit = 1500 in
  tab.(data.(hit)) <- key;
  for i = 0 to hit - 1 do
    if tab.(data.(i)) = key then data.(i) <- (data.(i) + 1) mod m
  done;
  for i = hit + 1 to n - 1 do
    if i mod 2 = 0 then data.(i) <- 9_999_999
  done;
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "data" data);
  ignore (Memory.alloc_ints mem "tab" tab);
  let env = [ ("key", Value.Int key); ("hit", Value.Int (-1)); ("run", Value.Int 0) ] in
  let built = Fv_workloads.Kernels.search_break ~name:"rtm_demo" ~trip:n ~data ~tab ~key () in
  ignore built;
  let loop =
    Fv_ir.Builder.(
      loop ~name:"rtm_demo" ~index:"i" ~hi:(int n) ~live_out:[ "hit"; "run" ]
        [
          assign "v" (load "data" (var "i"));
          assign "t" (load "tab" (var "v"));
          if_ (var "t" = var "key") [ assign "hit" (var "i"); break_ ];
          assign "run" (var "run" + int 1);
        ])
  in
  let vloop = Result.get_ok (Fv_vectorizer.Gen.vectorize loop) in

  (* the generic RTM abstraction: transactions commit or roll back *)
  let stats = Fv_rtm.Rtm.fresh_stats () in
  let m1 = Memory.clone mem and e1 = Fv_ir.Interp.env_of_list env in
  (match
     Fv_rtm.Rtm.atomically ~stats m1 e1 (fun () ->
         Memory.store m1 (Memory.addr_of m1 "tab" 0) (Value.Int 0);
         Memory.load m1 123 (* unmapped: faults *))
   with
  | Fv_rtm.Rtm.Committed _ -> assert false
  | Fv_rtm.Rtm.Aborted f ->
      Fmt.pr "transaction aborted on %a; tentative store rolled back: %b@.@."
        Memory.pp_fault f
        (Value.equal (Memory.get m1 "tab" 0) (Value.Int 5)));

  (* scalar reference *)
  let ms = Memory.clone mem and es = Fv_ir.Interp.env_of_list env in
  ignore (Fv_ir.Interp.run ms es loop);

  (* strip-mined transactional execution at several tile sizes *)
  Fmt.pr "tile   tiles  commits aborts  scalar-iters  hit@.";
  List.iter
    (fun tile ->
      let mr = Memory.clone mem and er = Fv_ir.Interp.env_of_list env in
      let r = Fv_simd.Rtm_run.run ~tile vloop mr er in
      assert (Memory.equal_contents ms mr);
      assert (Value.equal (Fv_ir.Interp.env_get es "hit") (Fv_ir.Interp.env_get er "hit"));
      Fmt.pr "%-6d %-6d %-7d %-7d %-13d %a@." tile r.tiles r.commits r.aborts
        r.scalar_iters Value.pp_compact
        (Fv_ir.Interp.env_get er "hit"))
    [ 16; 64; 256; 1024 ];
  Fmt.pr "@.all tile sizes reproduce the scalar result exactly.@."

(* Conditional scalar update (paper §4.2, Fig. 6).

   Demonstrates the vector partitioning loop in action: we plant updates
   at known positions inside one 16-lane strip and trace how many VPL
   partitions each strip needs, then compare FlexVec against the
   PACT'13-style wholesale-speculation baseline as updates become more
   frequent.

   Run with: dune exec examples/conditional_update.exe *)

open Fv_isa
module B = Fv_ir.Builder
module Memory = Fv_mem.Memory
module E = Fv_core.Experiment

let make_loop n =
  B.(
    loop ~name:"minsearch" ~index:"i" ~hi:(int n) ~live_out:[ "m"; "arg" ]
      [
        assign "t" (load "a" (var "i"));
        if_ (var "t" < var "m") [ assign "m" (var "t"); assign "arg" (var "i") ];
      ])

let () =
  (* one strip, updates at lanes 3, 7 and 12: the VPL must run four
     partitions — lanes 0-3, 4-7, 8-12, 13-15 *)
  let n = 16 in
  let loop = make_loop n in
  let a = Array.make n 100 in
  a.(3) <- 90;
  a.(7) <- 80;
  a.(12) <- 70;
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "a" a);
  let env = [ ("m", Value.Int 95); ("arg", Value.Int (-1)) ] in
  let vloop = Result.get_ok (Fv_vectorizer.Gen.vectorize loop) in
  Fmt.pr "== FlexVec vector code ==@.%a@.@." Fv_vir.Vpp.pp_vloop vloop;
  let mv = Memory.clone mem and ev = Fv_ir.Interp.env_of_list env in
  let stats = Fv_simd.Exec.run vloop mv ev in
  Fmt.pr "updates at lanes 3, 7, 12 -> %a@." Fv_simd.Exec.pp_stats stats;
  Fmt.pr "final m=%a arg=%a (expected 70 at 12)@.@." Value.pp_compact
    (Fv_ir.Interp.env_get ev "m")
    Value.pp_compact (Fv_ir.Interp.env_get ev "arg");

  (* FlexVec vs wholesale speculation as the update rate grows *)
  Fmt.pr "== FlexVec vs PACT'13 wholesale speculation ==@.";
  Fmt.pr "%-12s %-14s %-14s@." "update rate" "flexvec" "wholesale";
  List.iter
    (fun rate ->
      let build seed =
        let st = Random.State.make [| seed |] in
        let n = 4096 in
        let level = ref 1_000_000 in
        let a =
          Array.init n (fun _ ->
              if Random.State.float st 1.0 < rate then begin
                level := !level - 1 - Random.State.int st 5;
                !level
              end
              else !level + 1 + Random.State.int st 1000)
        in
        let mem = Memory.create () in
        ignore (Memory.alloc_ints mem "a" a);
        {
          Fv_workloads.Kernels.mem;
          env = [ ("m", Value.Int 2_000_000); ("arg", Value.Int (-1)) ];
          loop = make_loop n;
        }
      in
      let base = E.run_workload ~invocations:2 ~seed:5 E.Scalar build in
      let fv = E.run_workload ~invocations:2 ~seed:5 E.Flexvec build in
      let ws = E.run_workload ~invocations:2 ~seed:5 E.Wholesale build in
      Fmt.pr "%-12.3f %.2fx          %.2fx@." rate
        (E.hot_speedup ~baseline:base fv)
        (E.hot_speedup ~baseline:base ws))
    [ 0.001; 0.01; 0.05; 0.2 ]

(* Quickstart: vectorize one irregular loop end to end.

   Builds the paper's running example (the 464.h264ref motion-estimation
   loop of §1.1/Fig. 6), analyses it, generates FlexVec partial vector
   code, runs both the scalar reference and the vector program, checks
   they agree, and simulates both on the Table 1 machine.

   Run with: dune exec examples/quickstart.exe *)

open Fv_isa
module B = Fv_ir.Builder
module Memory = Fv_mem.Memory

let () =
  (* 1. write an irregular loop in the scalar IR *)
  let loop =
    B.(
      loop ~name:"motion" ~index:"pos" ~hi:(int 512)
        ~live_out:[ "min_mcost"; "best_pos" ]
        [
          if_
            (load "block_sad" (var "pos") < var "min_mcost")
            [
              assign "mcost" (load "block_sad" (var "pos"));
              assign "cand" (load "spiral" (var "pos"));
              assign "mcost" (var "mcost" + load "mv" (var "cand"));
              if_
                (var "mcost" < var "min_mcost")
                [ assign "min_mcost" (var "mcost"); assign "best_pos" (var "pos") ];
            ];
        ])
  in
  Fmt.pr "== scalar loop ==@.%a@.@." Fv_ir.Pp.pp_loop loop;

  (* 2. dependence analysis: the conditional update of min_mcost forms a
     strongly connected component that classical vectorizers reject *)
  Fmt.pr "== analysis ==@.%s@.@."
    (Fv_pdg.Classify.describe (Fv_pdg.Classify.analyze loop));
  Fmt.pr "traditional vectorizer accepts it? %b@.@."
    (Fv_vectorizer.Traditional.accepts loop);

  (* 3. FlexVec partial vector code generation *)
  let vloop = Result.get_ok (Fv_vectorizer.Gen.vectorize ~vl:16 loop) in
  Fmt.pr "== FlexVec vector code (VL=16) ==@.%a@.@." Fv_vir.Vpp.pp_vloop vloop;

  (* 4. build inputs and run both versions *)
  let rng = Random.State.make [| 1 |] in
  let n = 512 and m = 64 in
  let mem = Memory.create () in
  ignore
    (Memory.alloc_ints mem "block_sad"
       (Array.init n (fun _ -> 100 + Random.State.int rng 900)));
  ignore
    (Memory.alloc_ints mem "spiral" (Array.init n (fun _ -> Random.State.int rng m)));
  ignore
    (Memory.alloc_ints mem "mv" (Array.init m (fun _ -> Random.State.int rng 50)));
  let env = [ ("min_mcost", Value.Int 800); ("best_pos", Value.Int (-1)) ] in

  let ms = Memory.clone mem and es = Fv_ir.Interp.env_of_list env in
  let trips = Fv_ir.Interp.run ms es loop in
  let mv_ = Memory.clone mem and ev = Fv_ir.Interp.env_of_list env in
  let stats = Fv_simd.Exec.run vloop mv_ ev in
  Fmt.pr "== execution ==@.";
  Fmt.pr "scalar:  %d iterations, min_mcost=%a best_pos=%a@." trips
    Value.pp_compact
    (Fv_ir.Interp.env_get es "min_mcost")
    Value.pp_compact
    (Fv_ir.Interp.env_get es "best_pos");
  Fmt.pr "vector:  %a@." Fv_simd.Exec.pp_stats stats;
  Fmt.pr "vector:  min_mcost=%a best_pos=%a@." Value.pp_compact
    (Fv_ir.Interp.env_get ev "min_mcost")
    Value.pp_compact
    (Fv_ir.Interp.env_get ev "best_pos");
  assert (Memory.equal_contents ms mv_);
  Fmt.pr "memory and live-outs agree: OK@.@.";

  (* 5. cycle simulation on the Table 1 out-of-order machine *)
  let base = Fv_core.Experiment.run_hot Fv_core.Experiment.Scalar loop mem env in
  let flex = Fv_core.Experiment.run_hot Fv_core.Experiment.Flexvec loop mem env in
  Fmt.pr "== Table 1 machine ==@.";
  Fmt.pr "scalar : %a@." Fv_ooo.Pipeline.pp_stats base.pipe;
  Fmt.pr "flexvec: %a@." Fv_ooo.Pipeline.pp_stats flex.pipe;
  Fmt.pr "hot-region speedup: %.2fx@."
    (Fv_core.Experiment.hot_speedup ~baseline:base flex)

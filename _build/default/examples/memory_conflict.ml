(* Runtime cross-iteration memory dependencies (paper §3.1/§4.3, Figs. 2
   and 7).

   The loop conditionally writes d[coord] where coord is data-dependent;
   a later iteration may read the element an earlier one wrote.
   VPCONFLICTM detects the conflicting lanes at runtime and the VPL
   executes the strip partition by partition, enforcing store-to-load
   ordering in software.

   This example uses the exact conflict layout of the paper's §3.6
   worked example and shows the resulting partition sequence, then
   measures speedup as a function of conflict density.

   Run with: dune exec examples/memory_conflict.exe *)

module B = Fv_ir.Builder
module Memory = Fv_mem.Memory
module E = Fv_core.Experiment

let make_loop n =
  B.(
    loop ~name:"hits" ~index:"i" ~hi:(int n)
      [
        assign "q" (load "qa" (var "i"));
        assign "s" (load "sa" (var "i"));
        assign "coord" (var "q" - var "s");
        if_
          (var "s" >= load "d" (var "coord"))
          [ store "d" (var "coord") (var "s") ];
      ])

let () =
  let n = 16 in
  let loop = make_loop n in
  Fmt.pr "== scalar loop (Fig. 2a) ==@.%a@.@." Fv_ir.Pp.pp_loop loop;
  Fmt.pr "== analysis ==@.%s@.@."
    (Fv_pdg.Classify.describe (Fv_pdg.Classify.analyze loop));
  let vloop = Result.get_ok (Fv_vectorizer.Gen.vectorize loop) in
  Fmt.pr "== FlexVec vector code (Fig. 2b) ==@.%a@.@." Fv_vir.Vpp.pp_vloop vloop;

  (* coords chosen so lane 6 reads what lane 5 wrote, lane 8 what lane 6
     wrote, lane 15 what lane 14 wrote: partitions 0-5 / 6-7 / 8-14 / 15 *)
  let coord = [| 1; 2; 3; 4; 5; 6; 6; 8; 6; 10; 11; 12; 13; 14; 15; 15 |] in
  let sa = Array.init n (fun i -> 10 + i) in
  let qa = Array.init n (fun i -> coord.(i) + sa.(i)) in
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "qa" qa);
  ignore (Memory.alloc_ints mem "sa" sa);
  ignore (Memory.alloc_ints mem "d" (Array.make 32 0));
  let ms = Memory.clone mem in
  ignore (Fv_ir.Interp.run ms (Fv_ir.Interp.env_of_list []) loop);
  let mv = Memory.clone mem in
  let stats = Fv_simd.Exec.run vloop mv (Fv_ir.Interp.env_of_list []) in
  Fmt.pr "== execution ==@.%a@." Fv_simd.Exec.pp_stats stats;
  assert (Memory.equal_contents ms mv);
  Fmt.pr "software store-to-load forwarding matches scalar order: OK@.@.";

  Fmt.pr "== speedup vs conflict density ==@.";
  List.iter
    (fun rate ->
      let pts =
        Fv_core.Sweeps.strategy_sweep ~rates:[ rate ] ~trip:4096
          ~pattern:`Mem_conflict ()
      in
      match pts with
      | [ p ] ->
          Fmt.pr "conflict rate %-5.2f  flexvec %.2fx   wholesale %.2fx@." rate
            p.flexvec_speedup p.wholesale_speedup
      | _ -> assert false)
    [ 0.0; 0.05; 0.2; 0.5 ]

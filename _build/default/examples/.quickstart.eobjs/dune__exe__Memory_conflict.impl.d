examples/memory_conflict.ml: Array Fmt Fv_core Fv_ir Fv_mem Fv_pdg Fv_simd Fv_vectorizer Fv_vir List Result

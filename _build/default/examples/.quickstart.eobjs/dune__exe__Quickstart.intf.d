examples/quickstart.mli:

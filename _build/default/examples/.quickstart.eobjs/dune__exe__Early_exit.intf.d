examples/early_exit.mli:

examples/conditional_update.mli:

examples/rtm_speculation.mli:

examples/early_exit.ml: Array Fmt Fv_ir Fv_isa Fv_mem Fv_pdg Fv_simd Fv_vectorizer Fv_vir Random Result Value

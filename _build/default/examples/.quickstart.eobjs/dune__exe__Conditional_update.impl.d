examples/conditional_update.ml: Array Fmt Fv_core Fv_ir Fv_isa Fv_mem Fv_simd Fv_vectorizer Fv_vir Fv_workloads List Random Result Value

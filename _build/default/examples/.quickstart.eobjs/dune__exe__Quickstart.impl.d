examples/quickstart.ml: Array Fmt Fv_core Fv_ir Fv_isa Fv_mem Fv_ooo Fv_pdg Fv_simd Fv_vectorizer Fv_vir Random Result Value

examples/rtm_speculation.ml: Array Fmt Fv_ir Fv_isa Fv_mem Fv_rtm Fv_simd Fv_vectorizer Fv_workloads List Random Result Value

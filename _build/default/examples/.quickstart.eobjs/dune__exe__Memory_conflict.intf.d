examples/memory_conflict.mli:

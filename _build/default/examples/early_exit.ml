(* Early loop termination (paper §4.1, Fig. 5).

   A search loop breaks as soon as an indirectly loaded value matches a
   key. Vectorizing it means executing loads for lanes the scalar loop
   would never reach — including lanes whose indices are garbage — so
   the generated code uses VMOVFF/VPGATHERFF first-faulting loads, and a
   fault on a speculative lane falls back to scalar re-execution.

   This example plants invalid indices *after* the hit position to show
   the speculation machinery suppressing real faults.

   Run with: dune exec examples/early_exit.exe *)

open Fv_isa
module B = Fv_ir.Builder
module Memory = Fv_mem.Memory

let () =
  let n = 200 in
  let loop =
    B.(
      loop ~name:"search" ~index:"i" ~hi:(int n) ~live_out:[ "hit"; "sum" ]
        [
          assign "v" (load "data" (var "i"));
          assign "t" (load "tab" (var "v"));
          if_ (var "t" = var "key") [ assign "hit" (var "i"); break_ ];
          assign "sum" (var "sum" + var "t");
        ])
  in
  Fmt.pr "== scalar loop ==@.%a@.@." Fv_ir.Pp.pp_loop loop;
  Fmt.pr "== analysis ==@.%s@.@."
    (Fv_pdg.Classify.describe (Fv_pdg.Classify.analyze loop));
  let vloop = Result.get_ok (Fv_vectorizer.Gen.vectorize loop) in
  Fmt.pr "== FlexVec vector code ==@.%a@.@." Fv_vir.Vpp.pp_vloop vloop;

  (* data: the key is found at position 77; positions beyond it hold
     wild indices that would fault if dereferenced *)
  let m = 64 in
  let rng = Random.State.make [| 9 |] in
  let tab = Array.init m (fun k -> 10 + k) in
  let key = 123456 in
  let data = Array.init n (fun _ -> Random.State.int rng m) in
  let hit_pos = 77 in
  tab.(data.(hit_pos)) <- key;
  for i = 0 to hit_pos - 1 do
    if tab.(data.(i)) = key then data.(i) <- (data.(i) + 1) mod m
  done;
  for i = hit_pos + 1 to n - 1 do
    if i mod 3 = 0 then data.(i) <- 1_000_000 (* unmapped *)
  done;
  let mem = Memory.create () in
  ignore (Memory.alloc_ints mem "data" data);
  ignore (Memory.alloc_ints mem "tab" tab);
  let env = [ ("key", Value.Int key); ("hit", Value.Int (-1)); ("sum", Value.Int 0) ] in

  let ms = Memory.clone mem and es = Fv_ir.Interp.env_of_list env in
  let trips = Fv_ir.Interp.run ms es loop in
  let mv = Memory.clone mem and ev = Fv_ir.Interp.env_of_list env in
  let stats = Fv_simd.Exec.run vloop mv ev in
  Fmt.pr "== execution ==@.";
  Fmt.pr "scalar: %d iterations, hit=%a sum=%a@." trips Value.pp_compact
    (Fv_ir.Interp.env_get es "hit")
    Value.pp_compact (Fv_ir.Interp.env_get es "sum");
  Fmt.pr "vector: %a@." Fv_simd.Exec.pp_stats stats;
  Fmt.pr "vector: hit=%a sum=%a@." Value.pp_compact
    (Fv_ir.Interp.env_get ev "hit")
    Value.pp_compact (Fv_ir.Interp.env_get ev "sum");
  assert (Value.equal (Fv_ir.Interp.env_get es "hit") (Fv_ir.Interp.env_get ev "hit"));
  assert (Value.equal (Fv_ir.Interp.env_get es "sum") (Fv_ir.Interp.env_get ev "sum"));
  Fmt.pr "early exit found the same hit with speculative faults suppressed: OK@."
